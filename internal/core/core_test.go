package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"simsearch/internal/dataset"
	"simsearch/internal/filter"
	"simsearch/internal/pool"
	"simsearch/internal/scan"
	"simsearch/internal/trie"
)

func allEngines(data []string) []Searcher {
	var out []Searcher
	for _, s := range scan.Strategies() {
		out = append(out, NewSequential(data, scan.WithStrategy(s), scan.WithWorkers(4)))
	}
	out = append(out,
		NewSequential(data, scan.WithSortByLength()),
		NewAutomatonScan(data),
		NewTrie(data, false),
		NewTrie(data, true),
		NewTrie(data, true, trie.WithFrequency(filter.VowelFrequency())),
		NewBKTree(data),
		NewVPTree(data),
		NewQGram(2, data),
		NewSuffixArray(data),
	)
	return out
}

func testQueries() []Query {
	return []Query{
		{"berlin", 0}, {"berlin", 1}, {"berlin", 2}, {"berlin", 3},
		{"Bern", 1}, {"", 0}, {"", 2}, {"zzzzzz", 1}, {"ulm", 0},
	}
}

var testData = []string{
	"berlin", "bern", "bonn", "munich", "ulm", "köln", "erlangen",
	"magdeburg", "hamburg", "bremen", "", "ber", "berlins", "Berlin",
}

func TestAllEnginesVerifyAgainstReference(t *testing.T) {
	ref := Reference(testData)
	for _, eng := range allEngines(testData) {
		if err := Verify(eng, ref, testQueries()); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestEngineNamesAndLens(t *testing.T) {
	for _, eng := range allEngines(testData) {
		if eng.Name() == "" {
			t.Error("engine with empty name")
		}
		if eng.Len() != len(testData) {
			t.Errorf("%s: Len = %d, want %d", eng.Name(), eng.Len(), len(testData))
		}
	}
	if NewTrie(testData, true).Name() != "trie/compressed" {
		t.Error("compressed trie name wrong")
	}
	if NewQGram(3, testData).Name() != "qgram-3" {
		t.Error("qgram name wrong")
	}
}

func TestSearchBatchWithRunner(t *testing.T) {
	eng := NewTrie(testData, true)
	qs := testQueries()
	for _, runner := range []pool.Runner{nil, pool.Serial{}, pool.Fixed{Workers: 4}} {
		batch := SearchBatch(eng, qs, runner)
		if len(batch) != len(qs) {
			t.Fatalf("batch size %d", len(batch))
		}
		for i, q := range qs {
			if !Equal(batch[i], eng.Search(q)) {
				t.Errorf("runner %v query %d diverges", runner, i)
			}
		}
	}
}

func TestSearchBatchUsesEngineScheduler(t *testing.T) {
	eng := NewSequential(testData, scan.WithStrategy(scan.ParallelManaged), scan.WithWorkers(2))
	qs := testQueries()
	batch := SearchBatch(eng, qs, nil)
	ref := Reference(testData)
	for i, q := range qs {
		if !Equal(batch[i], ref.Search(q)) {
			t.Errorf("query %d diverges", i)
		}
	}
}

func TestVerifyReportsDivergence(t *testing.T) {
	good := Reference(testData)
	bad := brokenSearcher{}
	err := Verify(bad, good, []Query{{"berlin", 1}})
	if err == nil {
		t.Fatal("Verify accepted a broken engine")
	}
	ve, ok := err.(*VerifyError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ve.Engine != "broken" || ve.Query.Text != "berlin" {
		t.Errorf("VerifyError = %+v", ve)
	}
	if !strings.Contains(ve.Error(), "broken") {
		t.Errorf("message %q", ve.Error())
	}
}

type brokenSearcher struct{}

func (brokenSearcher) Search(q Query) []Match { return nil }
func (brokenSearcher) Name() string           { return "broken" }
func (brokenSearcher) Len() int               { return 0 }

func TestEqual(t *testing.T) {
	a := []Match{{1, 0}, {2, 1}}
	if !Equal(a, []Match{{1, 0}, {2, 1}}) {
		t.Error("equal sets reported unequal")
	}
	if Equal(a, []Match{{1, 0}}) {
		t.Error("different lengths reported equal")
	}
	if Equal(a, []Match{{1, 0}, {2, 2}}) {
		t.Error("different dist reported equal")
	}
	if !Equal(nil, nil) {
		t.Error("nil sets unequal")
	}
}

// Integration: every engine agrees with the reference on synthetic city and
// DNA workloads, the reproduction's end-to-end correctness gate.
func TestIntegrationCityWorkload(t *testing.T) {
	data := dataset.Cities(800, 101)
	queryStrs := dataset.Queries(data, 15, 3, 103)
	var qs []Query
	for _, s := range queryStrs {
		for _, k := range []int{0, 1, 2, 3} {
			qs = append(qs, Query{s, k})
		}
	}
	ref := Reference(data)
	for _, eng := range allEngines(data) {
		if err := Verify(eng, ref, qs); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestIntegrationDNAWorkload(t *testing.T) {
	data := dataset.DNAReads(250, 107)
	queryStrs := dataset.Queries(data, 8, 8, 109)
	var qs []Query
	for _, s := range queryStrs {
		for _, k := range []int{0, 4, 8, 16} {
			qs = append(qs, Query{s, k})
		}
	}
	ref := Reference(data)
	engines := []Searcher{
		NewSequential(data, scan.WithStrategy(scan.SimpleTypes)),
		NewTrie(data, true, trie.WithFrequency(filter.DNAFrequency())),
		NewQGram(3, data),
		NewSuffixArray(data),
		NewBKTree(data),
	}
	for _, eng := range engines {
		if err := Verify(eng, ref, qs); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func randomString(r *rand.Rand, alphabet string, maxLen int) string {
	n := r.Intn(maxLen + 1)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return sb.String()
}

func TestQuickAllEnginesAgree(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		data := make([]string, n)
		for i := range data {
			data[i] = randomString(r, "abAB", 8)
		}
		q := Query{randomString(r, "abAB", 8), r.Intn(4)}
		want := Reference(data).Search(q)
		for _, eng := range []Searcher{
			NewTrie(data, true),
			NewBKTree(data),
			NewQGram(2, data),
			NewSuffixArray(data),
			NewSequential(data, scan.WithSortByLength()),
		} {
			if !Equal(eng.Search(q), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
