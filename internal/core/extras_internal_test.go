package core

import (
	"bytes"
	"testing"

	"simsearch/internal/dataset"
	"simsearch/internal/trie"
)

func TestAutoChoosesByRegime(t *testing.T) {
	small := dataset.Cities(100, 1)
	if eng := Auto(small, 2); eng.Len() != 100 {
		t.Errorf("auto small Len = %d", eng.Len())
	}
	// Small datasets use a scan.
	if _, ok := Auto(small, 2).(*Sequential); !ok {
		t.Errorf("small dataset engine = %T, want *Sequential", Auto(small, 2))
	}
	big := dataset.Cities(5000, 2)
	if _, ok := Auto(big, 2).(*Trie); !ok {
		t.Errorf("large dataset engine = %T, want *Trie", Auto(big, 2))
	}
	// Permissive threshold relative to string length: scan.
	if _, ok := Auto(big, 1000).(*Sequential); !ok {
		t.Errorf("permissive-k engine = %T, want *Sequential", Auto(big, 1000))
	}
	// Default threshold path (expectedK <= 0).
	if eng := Auto(big, 0); eng == nil {
		t.Error("Auto with default k returned nil")
	}
	// Whatever Auto picks must be exact.
	ref := Reference(big[:500])
	eng := Auto(big[:500], 2)
	if err := Verify(eng, ref, []Query{{Text: big[0], K: 2}, {Text: "xyz", K: 1}}); err != nil {
		t.Errorf("auto engine inexact: %v", err)
	}
}

// TestAutoSmallSkipsStats proves the small-dataset fast path decides on
// len(data) alone: a full dataset.Stats corpus pass before the count check
// was PR 9's satellite bug (the same shape as PR 8's /stats-per-scrape fix,
// proven the same way — by making the expensive path impossible to take
// silently).
func TestAutoSmallSkipsStats(t *testing.T) {
	orig := statsFn
	defer func() { statsFn = orig }()
	calls := 0
	statsFn = func(data []string) dataset.Info {
		calls++
		return dataset.Stats(data)
	}
	small := dataset.Cities(BuildAmortization-1, 3)
	if _, ok := Auto(small, 2).(*Sequential); !ok {
		t.Fatalf("small dataset engine = %T, want *Sequential", Auto(small, 2))
	}
	if calls != 0 {
		t.Errorf("Auto paid %d dataset.Stats passes for a sub-amortization dataset, want 0", calls)
	}
	big := dataset.Cities(BuildAmortization, 3)
	if _, ok := Auto(big, 2).(*Trie); !ok {
		t.Fatalf("large dataset engine = %T, want *Trie", Auto(big, 2))
	}
	if calls != 1 {
		t.Errorf("Auto called dataset.Stats %d times for a large dataset, want 1", calls)
	}
}

func TestTrieAccessorsAndPersistence(t *testing.T) {
	tr := NewTrie(testData, true)
	if tr.Tree() == nil || tr.Tree().Len() != len(testData) {
		t.Error("Tree() accessor broken")
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != tr.Name() {
		t.Errorf("name %q != %q", got.Name(), tr.Name())
	}
	q := Query{Text: "berlin", K: 2}
	if !Equal(got.Search(q), tr.Search(q)) {
		t.Error("round-tripped trie diverges")
	}
	if _, err := ReadTrie(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
	// Modern trie name propagates through persistence.
	modern := NewTrie(testData, true, trie.WithModernPruning())
	buf.Reset()
	if _, err := modern.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = ReadTrie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "trie/compressed+modern" {
		t.Errorf("modern name lost: %q", got.Name())
	}
}

func TestTrieSearchHamming(t *testing.T) {
	data := []string{"ACGT", "ACGA", "AC"}
	tr := NewTrie(data, true)
	ms := tr.SearchHamming("ACGT", 1)
	if len(ms) != 2 || ms[0].ID != 0 || ms[0].Dist != 0 || ms[1].ID != 1 || ms[1].Dist != 1 {
		t.Errorf("SearchHamming = %v", ms)
	}
}

func TestTopKGenericEngines(t *testing.T) {
	// Exercise the iterative-deepening path (non-trie engine) including the
	// geometric radius growth for distant neighbours.
	data := []string{"aaaaaaaaaa", "aaaaaaaabb", "zzzzzzzzzz"}
	eng := NewBKTree(data)
	ms := TopK(eng, "aaaaaaaaaa", 2, 8)
	if len(ms) != 2 || ms[0].ID != 0 || ms[0].Dist != 0 || ms[1].ID != 1 || ms[1].Dist != 2 {
		t.Errorf("TopK = %v", ms)
	}
	// Distant nearest neighbour forces several radius expansions.
	m, ok := Nearest(eng, "zzzzzzzazz", 9)
	if !ok || m.ID != 2 || m.Dist != 1 {
		t.Errorf("Nearest = %v, %v", m, ok)
	}
	if _, ok := Nearest(eng, "qqq", 0); ok {
		t.Error("impossible nearest found")
	}
	if got := TopK(eng, "x", 0, 3); got != nil {
		t.Errorf("k=0: %v", got)
	}
}
