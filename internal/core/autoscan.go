package core

import (
	"simsearch/internal/lev"
)

// AutomatonScan is a sequential scan whose per-pair test is a lazy-DFA
// Levenshtein automaton compiled once per query — the fuzzy-matching
// construction mature search engines use. Against the DP-kernel scan it
// trades per-pair arithmetic for per-query compilation plus memoized O(1)
// byte steps, which pays off when many data strings share prefixes (the
// automaton caches the transition work the DP kernel redoes).
type AutomatonScan struct {
	data []string
}

// NewAutomatonScan builds the engine over data.
func NewAutomatonScan(data []string) *AutomatonScan {
	return &AutomatonScan{data: data}
}

// Search implements Searcher.
func (a *AutomatonScan) Search(q Query) []Match {
	if q.K < 0 {
		return nil
	}
	aut := lev.New(q.Text, q.K)
	out := make([]Match, 0, 4)
	for i, s := range a.data {
		// Length filter first; the automaton would discover it anyway but
		// the arithmetic check is cheaper.
		d := len(s) - len(q.Text)
		if d < 0 {
			d = -d
		}
		if d > q.K {
			continue
		}
		if dist, ok := aut.MatchDistance(s); ok {
			out = append(out, Match{ID: int32(i), Dist: dist})
		}
	}
	return out
}

// Name implements Searcher.
func (a *AutomatonScan) Name() string { return "scan/automaton" }

// Len implements Searcher.
func (a *AutomatonScan) Len() int { return len(a.data) }
