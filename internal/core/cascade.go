package core

import (
	"context"

	"simsearch/internal/cascade"
	"simsearch/internal/metrics"
)

// Cascade wraps the filter-cascade engine (paper §6 future work assembled
// into one serving path: length bucket, frequency vectors, q-gram counts,
// bounded Myers verify, over a 3-bit packed arena for DNA datasets).
type Cascade struct {
	eng *cascade.Engine
}

// NewCascade builds a cascade searcher over data. Options select ablation
// variants (cascade.WithoutFrequency, cascade.WithoutQGram) and counters.
func NewCascade(data []string, opts ...cascade.Option) *Cascade {
	return &Cascade{eng: cascade.New(data, opts...)}
}

// Search implements Searcher.
func (c *Cascade) Search(q Query) []Match {
	return convertScan(c.eng.Search(q.Text, q.K))
}

// SearchContext implements ContextSearcher: the slot sweep polls ctx at a
// bounded stride and abandons the query promptly after cancellation.
func (c *Cascade) SearchContext(ctx context.Context, q Query) ([]Match, error) {
	ms, err := c.eng.SearchContext(ctx, q.Text, q.K)
	if err != nil {
		return nil, err
	}
	return convertScan(ms), nil
}

// Name implements Searcher; it carries the active backend
// ("cascade/packed" or "cascade/bytes") and any ablation suffixes.
func (c *Cascade) Name() string { return c.eng.Name() }

// Len implements Searcher.
func (c *Cascade) Len() int { return c.eng.Len() }

// CascadeEngine exposes the underlying engine for observability surfaces
// (per-stage survivor counts, arena layout).
func (c *Cascade) CascadeEngine() *cascade.Engine { return c.eng }

// RegisterMetrics exposes the cascade's per-stage survivor counters on reg
// (picked up by the httpapi decorator-chain walk).
func (c *Cascade) RegisterMetrics(reg *metrics.Registry) { c.eng.RegisterMetrics(reg) }
