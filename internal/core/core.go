// Package core defines the reproduction's engine-independent API: queries,
// matches, the Searcher interface every engine implements, batch execution
// over a parallelism strategy, and the paper's §3.1 correctness protocol
// (every optimized engine is verified against the base implementation).
package core

import (
	"context"
	"fmt"
	"io"
	"sort"

	"simsearch/internal/bktree"
	"simsearch/internal/ngram"
	"simsearch/internal/pool"
	"simsearch/internal/scan"
	"simsearch/internal/suffix"
	"simsearch/internal/trie"
	"simsearch/internal/vptree"
)

// Query is one string-similarity-search request: find every data string x
// with ed(Text, x) <= K (paper eq. 1).
type Query struct {
	Text string
	K    int
}

// Match is one result: the data string's ID (its index in the dataset) and
// its exact edit distance to the query.
type Match struct {
	ID   int32
	Dist int
}

// Searcher answers string similarity queries over a fixed dataset. All
// implementations return matches sorted by ID, and all are safe for
// concurrent Search calls after construction.
type Searcher interface {
	// Search returns every dataset string within Q.K edits of Q.Text.
	Search(q Query) []Match
	// Name identifies the engine in reports.
	Name() string
	// Len returns the dataset size.
	Len() int
}

// ContextSearcher is implemented by engines that can abandon an in-flight
// query when its context is cancelled. SearchContext must return promptly
// after cancellation with ctx.Err() and a nil match slice; a nil error means
// the result is complete and identical to what Search would have returned.
type ContextSearcher interface {
	Searcher
	SearchContext(ctx context.Context, q Query) ([]Match, error)
}

// SearchContext answers q with s under ctx. Context-aware engines are driven
// through their own SearchContext; for plain engines the query runs on a
// helper goroutine and SearchContext returns ctx.Err() on cancellation
// without waiting for it (the abandoned goroutine finishes the scan and is
// then collected — plain engines have no way to abort mid-query).
func SearchContext(ctx context.Context, s Searcher, q Query) ([]Match, error) {
	if cs, ok := s.(ContextSearcher); ok {
		return cs.SearchContext(ctx, q)
	}
	if ctx == nil || ctx.Done() == nil {
		return s.Search(q), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return interruptible(ctx, func() []Match { return s.Search(q) })
}

// interruptible runs fn on a helper goroutine and returns its result, or
// ctx.Err() as soon as ctx is done — without waiting for fn. The abandoned
// goroutine finishes its work and is then collected; this is the only
// context strategy available for engines with no internal preemption points.
func interruptible(ctx context.Context, fn func() []Match) ([]Match, error) {
	ch := make(chan []Match, 1)
	go func() { ch <- fn() }()
	select {
	case ms := <-ch:
		return ms, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// sortMatches orders by ID, the canonical result order.
func sortMatches(ms []Match) []Match {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	return ms
}

// --- Sequential engine -----------------------------------------------------

// Sequential wraps the scan engine (the paper's §3 contribution).
type Sequential struct {
	eng  *scan.Engine
	name string
}

// NewSequential builds a sequential-scan searcher over data with the given
// scan options (strategy, workers, sorting).
func NewSequential(data []string, opts ...scan.Option) *Sequential {
	e := scan.New(data, opts...)
	return &Sequential{eng: e, name: "scan/" + e.Strategy().String()}
}

// Search implements Searcher.
func (s *Sequential) Search(q Query) []Match {
	return convertScan(s.eng.Search(scan.Query{Text: q.Text, K: q.K}))
}

// SearchBatch answers all queries using the engine's own across-queries
// scheduler (serial for ladder rungs 1–4, parallel for rungs 5–6).
func (s *Sequential) SearchBatch(qs []Query) [][]Match {
	sq := make([]scan.Query, len(qs))
	for i, q := range qs {
		sq[i] = scan.Query{Text: q.Text, K: q.K}
	}
	raw := s.eng.SearchBatch(sq)
	out := make([][]Match, len(raw))
	for i, ms := range raw {
		out[i] = convertScan(ms)
	}
	return out
}

// SearchContext implements ContextSearcher: the scan checks ctx periodically
// and abandons the query promptly after cancellation.
func (s *Sequential) SearchContext(ctx context.Context, q Query) ([]Match, error) {
	ms, err := s.eng.SearchContext(ctx, scan.Query{Text: q.Text, K: q.K})
	if err != nil {
		return nil, err
	}
	return convertScan(ms), nil
}

// Name implements Searcher.
func (s *Sequential) Name() string { return s.name }

// Len implements Searcher.
func (s *Sequential) Len() int { return s.eng.Len() }

// ScanEngine exposes the underlying scan engine for observability surfaces
// (ladder rung, pool size, BitParallel arena layout).
func (s *Sequential) ScanEngine() *scan.Engine { return s.eng }

func convertScan(ms []scan.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Dist: m.Dist}
	}
	return out // scan already emits in ID order
}

// --- Trie engine ------------------------------------------------------------

// Trie wraps the prefix-tree engine (the paper's §4 index).
type Trie struct {
	tree *trie.Tree
	name string
}

// NewTrie builds a prefix-tree searcher. compress selects the §4.2
// path-compressed variant.
func NewTrie(data []string, compress bool, opts ...trie.Option) *Trie {
	tr := trie.Build(data, opts...)
	name := "trie/plain"
	if compress {
		tr.Compress()
		name = "trie/compressed"
	}
	if tr.Modern() {
		name += "+modern"
	}
	return &Trie{tree: tr, name: name}
}

// Search implements Searcher.
func (t *Trie) Search(q Query) []Match {
	ms := t.tree.Search(q.Text, q.K)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Dist: m.Dist}
	}
	return sortMatches(out)
}

// Name implements Searcher.
func (t *Trie) Name() string { return t.name }

// Len implements Searcher.
func (t *Trie) Len() int { return t.tree.Len() }

// Tree exposes the underlying trie for structural reports (node counts).
func (t *Trie) Tree() *trie.Tree { return t.tree }

// SearchHamming answers a Hamming-distance query over the same tree: all
// stored strings of exactly len(text) bytes with at most k mismatches.
func (t *Trie) SearchHamming(text string, k int) []Match {
	ms := t.tree.SearchHamming(text, k)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Dist: m.Dist}
	}
	return sortMatches(out)
}

// SearchHammingContext is SearchHamming under a context: cancellation or
// deadline expiry returns ctx.Err() promptly while the abandoned traversal
// finishes on a helper goroutine (the trie walk has no preemption points).
func (t *Trie) SearchHammingContext(ctx context.Context, text string, k int) ([]Match, error) {
	if ctx == nil || ctx.Done() == nil {
		return t.SearchHamming(text, k), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return interruptible(ctx, func() []Match { return t.SearchHamming(text, k) })
}

// WriteTo serializes the built index (see trie.Tree.WriteTo).
func (t *Trie) WriteTo(w io.Writer) (int64, error) { return t.tree.WriteTo(w) }

// ReadTrie deserializes an index written with Trie.WriteTo.
func ReadTrie(r io.Reader) (*Trie, error) {
	tree, err := trie.Read(r)
	if err != nil {
		return nil, err
	}
	name := "trie/plain"
	if tree.Compressed() {
		name = "trie/compressed"
	}
	if tree.Modern() {
		name += "+modern"
	}
	return &Trie{tree: tree, name: name}, nil
}

// --- Baseline engines --------------------------------------------------------

// BKTree wraps the metric-tree baseline.
type BKTree struct{ tree *bktree.Tree }

// NewBKTree builds a BK-tree searcher over data.
func NewBKTree(data []string) *BKTree {
	return &BKTree{tree: bktree.Build(data)}
}

// Search implements Searcher.
func (b *BKTree) Search(q Query) []Match {
	ms := b.tree.Search(q.Text, q.K)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Dist: m.Dist}
	}
	return sortMatches(out)
}

// Name implements Searcher.
func (b *BKTree) Name() string { return "bktree" }

// Len implements Searcher.
func (b *BKTree) Len() int { return b.tree.Len() }

// QGram wraps the q-gram inverted-index baseline.
type QGram struct {
	idx *ngram.Index
}

// NewQGram builds a q-gram searcher with gram size q.
func NewQGram(q int, data []string) *QGram {
	return &QGram{idx: ngram.New(q, data)}
}

// Search implements Searcher.
func (g *QGram) Search(q Query) []Match {
	ms := g.idx.Search(q.Text, q.K)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Dist: m.Dist}
	}
	return out
}

// Name implements Searcher.
func (g *QGram) Name() string { return fmt.Sprintf("qgram-%d", g.idx.Q()) }

// Len implements Searcher.
func (g *QGram) Len() int { return g.idx.Len() }

// SuffixArray wraps the Navarro-style suffix-array partitioning baseline.
type SuffixArray struct{ idx *suffix.Index }

// NewSuffixArray builds the suffix-array searcher.
func NewSuffixArray(data []string) *SuffixArray {
	return &SuffixArray{idx: suffix.New(data)}
}

// Search implements Searcher.
func (s *SuffixArray) Search(q Query) []Match {
	ms := s.idx.Search(q.Text, q.K)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Dist: m.Dist}
	}
	return out
}

// Name implements Searcher.
func (s *SuffixArray) Name() string { return "suffixarray" }

// Len implements Searcher.
func (s *SuffixArray) Len() int { return s.idx.Len() }

// --- VP-tree baseline ----------------------------------------------------------

// VPTree wraps the vantage-point-tree baseline.
type VPTree struct{ tree *vptree.Tree }

// NewVPTree builds a vantage-point tree over data (deterministic layout).
func NewVPTree(data []string) *VPTree {
	return &VPTree{tree: vptree.Build(data, 1)}
}

// Search implements Searcher.
func (v *VPTree) Search(q Query) []Match {
	ms := v.tree.Search(q.Text, q.K)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Dist: m.Dist}
	}
	return out
}

// Name implements Searcher.
func (v *VPTree) Name() string { return "vptree" }

// Len implements Searcher.
func (v *VPTree) Len() int { return v.tree.Len() }

// --- Batch execution ----------------------------------------------------------

// Batcher is implemented by engines with their own batch scheduler.
type Batcher interface {
	SearchBatch(qs []Query) [][]Match
}

// QueryResult is one query's outcome in a context batch: either its complete
// match set or the error (context.Canceled, context.DeadlineExceeded, …) that
// ended it.
type QueryResult struct {
	Matches []Match
	Err     error
}

// ContextBatcher is implemented by engines that answer whole batches under a
// context with per-query outcomes: the sharded executor (shard-parallel, with
// per-query deadlines) and the result cache (hits answered locally, misses
// forwarded as one sub-batch). Cancelling ctx abandons the batch and returns
// ctx.Err(); per-query failures are reported in the QueryResult instead.
type ContextBatcher interface {
	Searcher
	SearchBatchContext(ctx context.Context, qs []Query) ([]QueryResult, error)
}

// SearchBatch answers every query with s. If runner is nil, the engine's own
// batch scheduler is used when available, otherwise queries run serially.
// A non-nil runner overrides the schedule (used for the Tables IV/VIII
// thread sweeps over the trie engine).
func SearchBatch(s Searcher, qs []Query, runner pool.Runner) [][]Match {
	if runner == nil {
		if b, ok := s.(Batcher); ok {
			return b.SearchBatch(qs)
		}
		runner = pool.Serial{}
	}
	out := make([][]Match, len(qs))
	runner.Run(len(qs), func(i int) {
		out[i] = s.Search(qs[i])
	})
	return out
}

// --- Verification (paper §3.1) -------------------------------------------------

// Reference returns the paper's base implementation: the unoptimized
// sequential scan whose results define correctness.
func Reference(data []string) Searcher {
	return NewSequential(data, scan.WithStrategy(scan.Base))
}

// VerifyError reports the first divergence found by Verify.
type VerifyError struct {
	Engine string
	Query  Query
	Got    []Match
	Want   []Match
}

// Error implements error.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("engine %s diverges from reference on query %+v: got %v, want %v",
		e.Engine, e.Query, e.Got, e.Want)
}

// Verify checks s against ref on every query, implementing the paper's
// "results of the first solution will be used for the comparison in the
// other approaches" protocol. It returns nil iff all result sets match.
func Verify(s, ref Searcher, qs []Query) error {
	for _, q := range qs {
		got := s.Search(q)
		want := ref.Search(q)
		if !Equal(got, want) {
			return &VerifyError{Engine: s.Name(), Query: q, Got: got, Want: want}
		}
	}
	return nil
}

// Equal reports whether two ID-sorted result sets are identical.
func Equal(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
