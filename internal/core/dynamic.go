package core

import (
	"sync"

	"simsearch/internal/trie"
)

// Dynamic is a mutable similarity index: strings can be added and removed
// after construction, and searches run concurrently with updates under a
// readers-writer lock. It wraps an uncompressed modern-pruning trie (path
// compression is a static-tree optimization; an updatable tree keeps
// single-byte edges).
//
// IDs are assigned by Add and never reused; Remove leaves a hole. Len counts
// live strings.
type Dynamic struct {
	mu      sync.RWMutex
	tree    *trie.Tree
	strings []string // id -> string ("" + dead flag for removed)
	dead    []bool
	live    int
}

// NewDynamic returns an empty dynamic index.
func NewDynamic() *Dynamic {
	return &Dynamic{tree: trie.New(trie.WithModernPruning())}
}

// NewDynamicFrom seeds the index with data; string i gets ID i.
func NewDynamicFrom(data []string) *Dynamic {
	d := NewDynamic()
	for _, s := range data {
		d.Add(s)
	}
	return d
}

// Add inserts s and returns its ID.
func (d *Dynamic) Add(s string) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := int32(len(d.strings))
	d.strings = append(d.strings, s)
	d.dead = append(d.dead, false)
	d.tree.Insert(s, id)
	d.live++
	return id
}

// Remove deletes the string with the given ID. It reports whether the ID was
// live.
func (d *Dynamic) Remove(id int32) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || int(id) >= len(d.strings) || d.dead[id] {
		return false
	}
	if !d.tree.Delete(d.strings[id], id) {
		return false
	}
	d.dead[id] = true
	d.live--
	return true
}

// Value returns the string stored under id.
func (d *Dynamic) Value(id int32) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || int(id) >= len(d.strings) || d.dead[id] {
		return "", false
	}
	return d.strings[id], true
}

// Search implements Searcher.
func (d *Dynamic) Search(q Query) []Match {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ms := d.tree.Search(q.Text, q.K)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Dist: m.Dist}
	}
	return sortMatches(out)
}

// Name implements Searcher.
func (d *Dynamic) Name() string { return "trie/dynamic" }

// Len implements Searcher (live strings only).
func (d *Dynamic) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.live
}
