package core

import (
	"math/rand"
	"sync"
	"testing"

	"simsearch/internal/edit"
)

func TestDynamicAddRemoveSearch(t *testing.T) {
	d := NewDynamic()
	if d.Len() != 0 || d.Name() != "trie/dynamic" {
		t.Fatalf("fresh index: Len=%d Name=%q", d.Len(), d.Name())
	}
	berlin := d.Add("berlin")
	bern := d.Add("bern")
	d.Add("ulm")
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
	ms := d.Search(Query{Text: "berlin", K: 2})
	if len(ms) != 2 || ms[0].ID != berlin || ms[1].ID != bern {
		t.Errorf("Search = %v", ms)
	}
	if !d.Remove(bern) {
		t.Error("Remove failed")
	}
	if d.Remove(bern) {
		t.Error("double Remove succeeded")
	}
	if d.Remove(-1) || d.Remove(99) {
		t.Error("bogus ID removed")
	}
	ms = d.Search(Query{Text: "berlin", K: 2})
	if len(ms) != 1 || ms[0].ID != berlin {
		t.Errorf("after remove: %v", ms)
	}
	if d.Len() != 2 {
		t.Errorf("Len after remove = %d", d.Len())
	}
	if v, ok := d.Value(berlin); !ok || v != "berlin" {
		t.Errorf("Value = %q, %v", v, ok)
	}
	if _, ok := d.Value(bern); ok {
		t.Error("Value of removed ID succeeded")
	}
}

func TestDynamicFromSeedAgreesWithStatic(t *testing.T) {
	data := testData
	d := NewDynamicFrom(data)
	static := NewTrie(data, true)
	for _, q := range testQueries() {
		if !Equal(d.Search(q), static.Search(q)) {
			t.Errorf("dynamic diverges on %+v", q)
		}
	}
}

func TestDynamicMatchesBruteForceUnderChurn(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	d := NewDynamic()
	live := map[int32]string{}
	var ids []int32
	for step := 0; step < 400; step++ {
		switch {
		case len(ids) == 0 || r.Intn(3) > 0:
			s := randomString(r, "abAB", 8)
			id := d.Add(s)
			live[id] = s
			ids = append(ids, id)
		default:
			i := r.Intn(len(ids))
			id := ids[i]
			ids = append(ids[:i], ids[i+1:]...)
			if _, ok := live[id]; !ok {
				t.Fatal("test bookkeeping broken")
			}
			if !d.Remove(id) {
				t.Fatalf("Remove(%d) failed", id)
			}
			delete(live, id)
		}
		if step%20 == 0 {
			q := randomString(r, "abAB", 8)
			k := r.Intn(3)
			got := d.Search(Query{Text: q, K: k})
			want := 0
			for id, s := range live {
				if edit.WithinK(q, s, k) {
					want++
					found := false
					for _, m := range got {
						if m.ID == id {
							found = true
						}
					}
					if !found {
						t.Fatalf("live string %q (id %d) missing from search", s, id)
					}
				}
			}
			if len(got) != want {
				t.Fatalf("step %d: %d matches, want %d", step, len(got), want)
			}
		}
	}
}

func TestDynamicConcurrentUse(t *testing.T) {
	d := NewDynamicFrom(testData)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				switch r.Intn(3) {
				case 0:
					d.Add(randomString(r, "ab", 6))
				case 1:
					d.Search(Query{Text: "berlin", K: 2})
				default:
					d.Len()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if d.Len() < len(testData) {
		t.Errorf("Len shrank: %d", d.Len())
	}
}
