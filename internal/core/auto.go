package core

import (
	"simsearch/internal/dataset"
	"simsearch/internal/scan"
	"simsearch/internal/trie"
)

// Auto picks an engine for the dataset and an expected threshold — the
// paper's conclusion turned into an executable planner, updated with this
// reproduction's own measurements (EXPERIMENTS.md):
//
//   - Tiny datasets never amortize an index build: scan.
//   - Long strings over a small alphabet with substantial thresholds (the
//     DNA regime) favor the prefix tree with modern pruning — both in the
//     paper and here.
//   - Short variable-length strings with small thresholds (the city-name
//     regime): the paper's own index loses to its scan, but the modern
//     banded trie wins on this regime too, so the planner still picks the
//     trie once the dataset is large enough to amortize the build.
//
// expectedK <= 0 defaults to 2. The returned engine is always exact; the
// choice only affects speed.
func Auto(data []string, expectedK int) Searcher {
	if expectedK <= 0 {
		expectedK = 2
	}
	info := dataset.Stats(data)
	const buildAmortization = 4096
	if info.Count < buildAmortization {
		return NewSequential(data,
			scan.WithStrategy(scan.SimpleTypes), scan.WithBandedKernel(),
			scan.WithSortByLength())
	}
	// Very permissive thresholds relative to the string length defeat every
	// index's pruning (nearly everything matches); scanning with the banded
	// kernel and length sorting is then the robust choice.
	if float64(expectedK) > 0.5*info.AvgLen {
		return NewSequential(data,
			scan.WithStrategy(scan.SimpleTypes), scan.WithBandedKernel(),
			scan.WithSortByLength())
	}
	return NewTrie(data, true, trie.WithModernPruning())
}
