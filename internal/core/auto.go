package core

import (
	"simsearch/internal/dataset"
	"simsearch/internal/scan"
	"simsearch/internal/trie"
)

// statsFn computes dataset statistics for Auto. A package variable so the
// regression test can prove the small-dataset path never pays the full
// corpus pass (see TestAutoSmallSkipsStats).
var statsFn = dataset.Stats

// BuildAmortization is the dataset size below which no index build pays for
// itself: Auto (and the router's cold-start prior, which reuses the same
// rules) keeps smaller datasets on the scan.
const BuildAmortization = 4096

// Auto picks an engine for the dataset and an expected threshold — the
// paper's conclusion turned into an executable planner, updated with this
// reproduction's own measurements (EXPERIMENTS.md):
//
//   - Tiny datasets never amortize an index build: scan.
//   - Long strings over a small alphabet with substantial thresholds (the
//     DNA regime) favor the prefix tree with modern pruning — both in the
//     paper and here.
//   - Short variable-length strings with small thresholds (the city-name
//     regime): the paper's own index loses to its scan, but the modern
//     banded trie wins on this regime too, so the planner still picks the
//     trie once the dataset is large enough to amortize the build.
//
// expectedK <= 0 defaults to 2. The returned engine is always exact; the
// choice only affects speed.
//
// The public facade's NewAuto no longer calls this directly — it builds the
// adaptive router (internal/router), which starts from these rules as its
// cold-start prior and then re-fits per query. Auto remains the static
// reference planner.
func Auto(data []string, expectedK int) Searcher {
	if expectedK <= 0 {
		expectedK = 2
	}
	// The count decides the common small-dataset case by itself; computing
	// full statistics first would pay an O(total bytes) corpus pass just to
	// read back len(data).
	if len(data) < BuildAmortization {
		return NewSequential(data,
			scan.WithStrategy(scan.SimpleTypes), scan.WithBandedKernel(),
			scan.WithSortByLength())
	}
	info := statsFn(data)
	// Very permissive thresholds relative to the string length defeat every
	// index's pruning (nearly everything matches); scanning with the banded
	// kernel and length sorting is then the robust choice.
	if float64(expectedK) > 0.5*info.AvgLen {
		return NewSequential(data,
			scan.WithStrategy(scan.SimpleTypes), scan.WithBandedKernel(),
			scan.WithSortByLength())
	}
	return NewTrie(data, true, trie.WithModernPruning())
}
