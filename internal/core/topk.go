package core

import (
	"context"
	"sort"
)

// TopK returns up to k of the closest dataset strings to text, ordered by
// (distance, ID), considering only candidates within maxDist edits. It is
// implemented by iterative deepening on the threshold: thresholds 0, 1, 2, …
// are tried until enough matches accumulate, so the common case (a close
// match exists) never pays for a permissive search. Engines whose search
// cost grows with the threshold — all of the engines in this module — make
// this strictly cheaper than a single maxDist search when matches are near.
func TopK(s Searcher, text string, k, maxDist int) []Match {
	if k <= 0 || maxDist < 0 {
		return nil
	}
	if t, ok := s.(*Trie); ok {
		// Trie engines support best-first search directly: subtrees are
		// explored in lower-bound order and the search stops as soon as the
		// k-th best distance beats every remaining bound.
		ms := t.tree.NearestK(text, k, maxDist)
		out := make([]Match, len(ms))
		for i, m := range ms {
			out[i] = Match{ID: m.ID, Dist: m.Dist}
		}
		return out
	}
	for dist := 0; ; dist++ {
		// Grow the radius geometrically after the first misses so a far
		// nearest neighbour doesn't cost maxDist searches.
		radius := dist
		if dist > 2 {
			radius = 2 << (dist - 2)
		}
		if radius > maxDist {
			radius = maxDist
		}
		ms := s.Search(Query{Text: text, K: radius})
		if len(ms) >= k || radius == maxDist {
			sort.Slice(ms, func(i, j int) bool {
				if ms[i].Dist != ms[j].Dist {
					return ms[i].Dist < ms[j].Dist
				}
				return ms[i].ID < ms[j].ID
			})
			if len(ms) > k {
				ms = ms[:k]
			}
			return ms
		}
	}
}

// TopKContext is TopK under a context: cancellation or deadline expiry makes
// it return promptly with ctx.Err(). The iterative-deepening path checks the
// context between (and, for context-aware engines, inside) every radius
// search; the trie best-first path has no internal preemption points, so it
// runs interruptibly on a helper goroutine like SearchContext does for plain
// engines.
func TopKContext(ctx context.Context, s Searcher, text string, k, maxDist int) ([]Match, error) {
	if k <= 0 || maxDist < 0 {
		return nil, nil
	}
	if ctx == nil || ctx.Done() == nil {
		return TopK(s, text, k, maxDist), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, ok := s.(*Trie); ok {
		return interruptible(ctx, func() []Match { return TopK(s, text, k, maxDist) })
	}
	for dist := 0; ; dist++ {
		radius := dist
		if dist > 2 {
			radius = 2 << (dist - 2)
		}
		if radius > maxDist {
			radius = maxDist
		}
		ms, err := SearchContext(ctx, s, Query{Text: text, K: radius})
		if err != nil {
			return nil, err
		}
		if len(ms) >= k || radius == maxDist {
			sort.Slice(ms, func(i, j int) bool {
				if ms[i].Dist != ms[j].Dist {
					return ms[i].Dist < ms[j].Dist
				}
				return ms[i].ID < ms[j].ID
			})
			if len(ms) > k {
				ms = ms[:k]
			}
			return ms, nil
		}
	}
}

// Nearest returns the single closest dataset string within maxDist edits,
// or ok=false if none exists.
func Nearest(s Searcher, text string, maxDist int) (Match, bool) {
	ms := TopK(s, text, 1, maxDist)
	if len(ms) == 0 {
		return Match{}, false
	}
	return ms[0], true
}
