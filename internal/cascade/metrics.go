package cascade

import (
	"sync/atomic"

	"simsearch/internal/metrics"
)

// RegisterMetrics exposes the engine's cumulative counters on reg. The
// per-stage survivor counts make the cascade observable in production: a
// stage whose survivors track its input has stopped pruning.
func (e *Engine) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("simsearch_cascade_queries_total",
		"queries answered by the cascade engine",
		func() float64 { return float64(e.queries.Load()) })
	stage := func(name string, c *atomic.Uint64) {
		reg.CounterFunc("simsearch_cascade_stage_survivors_total",
			"candidates surviving each cascade stage, cumulative across queries",
			func() float64 { return float64(c.Load()) }, metrics.L("stage", name))
	}
	stage("length", &e.candidates)
	stage("frequency", &e.freqSurvivors)
	stage("qgram", &e.qgramSurvivors)
	stage("verify", &e.matches)
	reg.GaugeFunc("simsearch_cascade_packed",
		"1 when the 3-bit packed DNA arena is active, 0 for the byte arena",
		func() float64 {
			if e.packed != nil {
				return 1
			}
			return 0
		})
}
