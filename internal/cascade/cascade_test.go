package cascade

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"simsearch/internal/edit"
)

// oracle returns the brute-force result set in ID order.
func oracle(data []string, q string, k int) []Match {
	var out []Match
	for i, s := range data {
		if d := edit.Distance(q, s); d <= k {
			out = append(out, Match{ID: int32(i), Dist: d})
		}
	}
	return out
}

func equal(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomString(r *rand.Rand, alpha string, maxLen int) string {
	n := r.Intn(maxLen + 1)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[r.Intn(len(alpha))])
	}
	return sb.String()
}

func TestBackendSelection(t *testing.T) {
	if e := New([]string{"ACGT", "TTNN"}); !e.Packed() || e.Name() != "cascade/packed" {
		t.Errorf("all-DNA data must select the packed backend, got %s", e.Name())
	}
	if e := New([]string{"ACGT", "Berlin"}); e.Packed() || e.Name() != "cascade/bytes" {
		t.Errorf("mixed data must select the byte backend, got %s", e.Name())
	}
	if got := New(nil, WithoutFrequency(), WithoutQGram()).Name(); got != "cascade/packed-nofreq-noqgram" {
		t.Errorf("ablation name = %q", got)
	}
}

func TestSearchMatchesOracle(t *testing.T) {
	alphabets := []string{"ACGNT", "abcdefgh Z-"}
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := alphabets[r.Intn(len(alphabets))]
		data := make([]string, r.Intn(40))
		for i := range data {
			data[i] = randomString(r, alpha, 24)
		}
		e := New(data)
		for i := 0; i < 6; i++ {
			// Queries from either alphabet: a byte query against the packed
			// backend exercises the lossy-pack exactness path.
			q := randomString(r, alphabets[r.Intn(len(alphabets))], 24)
			k := r.Intn(8)
			got := e.Search(q, k)
			want := oracle(data, q, k)
			if !equal(got, want) {
				t.Errorf("seed %d %s: Search(%q,%d) = %v, want %v", seed, e.Name(), q, k, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Soundness: no filter stage may reject a true match. Running every ablation
// combination over the same workload and demanding identical results means a
// stage can only ever remove non-matches: verify-only (both filters off) is
// exhaustive ground truth, and each enabled stage must preserve it.
func TestStagesNeverRejectTrueMatch(t *testing.T) {
	combos := [][]Option{
		nil,
		{WithoutFrequency()},
		{WithoutQGram()},
		{WithoutFrequency(), WithoutQGram()},
	}
	alphabets := []string{"ACGNT", "city name alphabet"}
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := alphabets[r.Intn(len(alphabets))]
		data := make([]string, 1+r.Intn(30))
		for i := range data {
			data[i] = randomString(r, alpha, 20)
		}
		engines := make([]*Engine, len(combos))
		for i, c := range combos {
			engines[i] = New(data, c...)
		}
		for i := 0; i < 4; i++ {
			q := randomString(r, alpha, 20)
			k := r.Intn(6)
			want := engines[len(engines)-1].Search(q, k) // verify-only: no filter stages
			for _, e := range engines[:len(engines)-1] {
				if got := e.Search(q, k); !equal(got, want) {
					t.Errorf("seed %d: %s diverges from verify-only on (%q,%d): got %v, want %v",
						seed, e.Name(), q, k, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestShortStringsAndZeroK(t *testing.T) {
	// Strings shorter than both gram sizes, empty strings, k=0 exact lookup.
	data := []string{"", "A", "AC", "ACG", "ACGT", "x", "xy"}
	e := New(data)
	for _, q := range []string{"", "A", "AC", "B", "xy", "ACGT"} {
		for k := 0; k < 4; k++ {
			if got, want := e.Search(q, k), oracle(data, q, k); !equal(got, want) {
				t.Errorf("Search(%q,%d) = %v, want %v", q, k, got, want)
			}
		}
	}
	if ms := e.Search("ACG", -1); ms != nil {
		t.Errorf("negative k must return nil, got %v", ms)
	}
}

func TestSearchContextCancellation(t *testing.T) {
	data := make([]string, 3000)
	for i := range data {
		data[i] = strings.Repeat("ACGT", 6)
	}
	q := strings.Repeat("ACGT", 6)
	for _, e := range []*Engine{New(data), New(append(data, "not dna"))} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := e.SearchContext(ctx, q, 2); err == nil {
			t.Errorf("%s: pre-cancelled context must abort the sweep", e.Name())
		}
		if ms, err := e.SearchContext(context.Background(), q, 0); err != nil || len(ms) < 3000 {
			t.Errorf("%s: uncancelled exact search: %d matches, err %v", e.Name(), len(ms), err)
		}
	}
}

func TestStatsSurvivorFunnel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := make([]string, 500)
	for i := range data {
		data[i] = randomString(r, "ACGNT", 30)
	}
	e := New(data)
	for i := 0; i < 20; i++ {
		e.Search(randomString(r, "ACGNT", 30), 1+r.Intn(3))
	}
	st := e.Stats()
	if st.Queries != 20 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if !st.Packed || st.ArenaBytes <= 0 || st.Buckets <= 0 || st.Strings != len(data) {
		t.Errorf("layout stats wrong: %+v", st)
	}
	// The funnel may only narrow: every stage's survivors are a subset of the
	// previous stage's.
	if st.Candidates < st.FreqSurvivors || st.FreqSurvivors < st.QGramSurvivors ||
		st.QGramSurvivors < st.Matches {
		t.Errorf("survivor funnel widened: %+v", st)
	}
	if st.Candidates == 0 {
		t.Error("length stage admitted no candidates over 20 random queries")
	}
}

func TestComparisonCounterCountsVerifyCalls(t *testing.T) {
	var total uint64
	var mu sync.Mutex
	add := addFunc(func(n uint64) { mu.Lock(); total += n; mu.Unlock() })
	r := rand.New(rand.NewSource(3))
	data := make([]string, 200)
	for i := range data {
		data[i] = randomString(r, "ACGNT", 25)
	}
	e := New(data, WithComparisonCounter(add))
	for i := 0; i < 10; i++ {
		e.Search(randomString(r, "ACGNT", 25), 2)
	}
	mu.Lock()
	got := total
	mu.Unlock()
	if got != e.Stats().QGramSurvivors {
		t.Errorf("comparison counter = %d, want verify calls %d", got, e.Stats().QGramSurvivors)
	}
}

type addFunc func(uint64)

func (f addFunc) Add(n uint64) { f(n) }

func TestConcurrentSearches(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	dna := make([]string, 800)
	for i := range dna {
		dna[i] = randomString(r, "ACGNT", 24)
	}
	city := make([]string, 800)
	for i := range city {
		city[i] = randomString(r, "abcdefgh ", 24)
	}
	for _, e := range []*Engine{New(dna), New(city)} {
		e := e
		want := e.Search("ACGNTACG", 3)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rr := rand.New(rand.NewSource(seed))
				for i := 0; i < 40; i++ {
					if got := e.Search("ACGNTACG", 3); !equal(got, want) {
						t.Errorf("%s: concurrent result diverged", e.Name())
						return
					}
					e.Search(randomString(rr, "abcACGNT", 20), rr.Intn(5))
					e.Stats()
				}
			}(int64(g))
		}
		wg.Wait()
	}
}
