// The byte backend: for datasets that are not pure DNA the cascade runs over
// the scan package's length-bucketed byte arena, with vowel frequency
// vectors (the paper's §6 suggestion for the city names) precomputed per
// slot and a 2-gram count stage over raw bytes.
package cascade

import (
	"context"
	"sync"

	"simsearch/internal/edit"
	"simsearch/internal/filter"
	"simsearch/internal/scan"
)

// byteQ is the gram size of the byte q-gram stage. Two bytes index a
// 65536-entry table; the tables are pooled across queries (see gramTables)
// because zeroing half a megabyte per query would dominate short queries.
const byteQ = 2

// byteGramSpace is the number of distinct byte 2-grams.
const byteGramSpace = 1 << 16

// byteArena is the byte-backend candidate layout: the shared scan arena plus
// a slot-major slab of precomputed frequency vectors.
type byteArena struct {
	ar   *scan.Arena
	f    *filter.Frequency
	nsym int
	freq []int32
}

// buildByteArena packs data into a scan arena and precomputes every slot's
// vowel frequency vector into one flat slab.
func buildByteArena(data []string) *byteArena {
	ba := &byteArena{ar: scan.NewArena(data), f: filter.VowelFrequency()}
	ba.nsym = ba.f.NumSymbols()
	ba.freq = make([]int32, ba.nsym*ba.ar.Len())
	for s := int32(0); s < int32(ba.ar.Len()); s++ {
		row := ba.freq[int(s)*ba.nsym : (int(s)+1)*ba.nsym]
		xb := ba.ar.SlotBytes(s)
		for _, b := range xb {
			if idx := ba.f.Index(b); idx >= 0 {
				row[idx]++
			}
		}
	}
	return ba
}

// freqRow returns slot s's precomputed frequency vector.
func (ba *byteArena) freqRow(s int32) []int32 {
	return ba.freq[int(s)*ba.nsym : (int(s)+1)*ba.nsym]
}

// byteGramTable holds the query's 2-gram profile and the per-candidate
// consumption counters. Both arrays are kept all-zero between uses via
// touched-list restore, so a pooled table never needs re-zeroing.
type byteGramTable struct {
	profile  [byteGramSpace]int32
	used     [byteGramSpace]int32
	touchedQ []uint16 // grams set during profile build, restored on release
	touched  []uint16 // grams consumed per candidate, restored per candidate
}

// gramTables recycles the half-megabyte tables across queries and
// goroutines.
var gramTables = sync.Pool{New: func() any { return new(byteGramTable) }}

// bytePlan is the per-query compiled state of the byte cascade.
type bytePlan struct {
	p       *edit.MyersPattern
	vq      []int32
	tab     *byteGramTable
	qGrams  int
	scratch edit.MyersScratch
}

// newBytePlan compiles q once: Myers pattern, frequency vector, 2-gram
// profile. The caller must release() the plan to return the gram table to
// the pool with its invariants restored.
func newBytePlan(ba *byteArena, q string) *bytePlan {
	pl := &bytePlan{p: edit.CompileMyers(q), vq: make([]int32, ba.nsym)}
	for i := 0; i < len(q); i++ {
		if idx := ba.f.Index(q[i]); idx >= 0 {
			pl.vq[idx]++
		}
	}
	pl.tab = gramTables.Get().(*byteGramTable)
	if len(q) >= byteQ {
		pl.qGrams = len(q) - byteQ + 1
		for i := byteQ - 1; i < len(q); i++ {
			g := uint16(q[i-1])<<8 | uint16(q[i])
			pl.tab.profile[g]++
			pl.tab.touchedQ = append(pl.tab.touchedQ, g)
		}
	}
	return pl
}

// release restores the gram table to all-zero and returns it to the pool.
func (pl *bytePlan) release() {
	for _, g := range pl.tab.touchedQ {
		pl.tab.profile[g] = 0
	}
	pl.tab.touchedQ = pl.tab.touchedQ[:0]
	gramTables.Put(pl.tab)
	pl.tab = nil
}

// gramKeep reports whether the candidate shares at least bound 2-grams with
// the query, with the same consume/restore and two-sided early exit as the
// packed stage.
func (pl *bytePlan) gramKeep(xb []byte, bound int) bool {
	cand := len(xb) - byteQ + 1
	if bound > pl.qGrams || bound > cand {
		return false
	}
	shared := 0
	remaining := cand
	keep := false
	tab := pl.tab
	touched := tab.touched[:0]
	for i := byteQ - 1; i < len(xb); i++ {
		g := uint16(xb[i-1])<<8 | uint16(xb[i])
		remaining--
		if tab.used[g] < tab.profile[g] {
			shared++
		}
		tab.used[g]++
		touched = append(touched, g)
		if shared >= bound {
			keep = true
			break
		}
		if shared+remaining < bound {
			break
		}
	}
	for _, g := range touched {
		tab.used[g] = 0
	}
	tab.touched = touched[:0]
	return keep
}

// searchBytes runs the cascade over the byte arena; see searchPacked for the
// sweep structure.
func (e *Engine) searchBytes(ctx context.Context, q string, k int) ([]Match, error) {
	ba := e.bytes
	lo, hi := ba.ar.SlotRange(len(q)-k, len(q)+k)
	var visited, freqKept, gramKept uint64
	defer func() {
		e.candidates.Add(visited)
		e.freqSurvivors.Add(freqKept)
		e.qgramSurvivors.Add(gramKept)
		if e.comps != nil {
			e.comps.Add(gramKept)
		}
	}()
	if lo == hi {
		return nil, nil
	}
	pl := newBytePlan(ba, q)
	defer pl.release()
	k32 := int32(k)
	ms := make([]Match, 0, 16)
	for s := lo; s < hi; s++ {
		if visited%ctxStride == ctxStride-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		visited++
		if !e.noFreq && freqBound(pl.vq, ba.freqRow(s)) > k32 {
			continue
		}
		freqKept++
		xb := ba.ar.SlotBytes(s)
		if !e.noQGram {
			if b := filter.QGramCountBound(len(q), len(xb), byteQ, k); b > 0 && !pl.gramKeep(xb, b) {
				continue
			}
		}
		gramKept++
		if d, ok := pl.p.BoundedDistanceBytes(xb, k, &pl.scratch); ok {
			ms = append(ms, Match{ID: ba.ar.SlotID(s), Dist: d})
		}
	}
	e.matches.Add(uint64(len(ms)))
	return scan.MergeRuns(ms), nil
}
