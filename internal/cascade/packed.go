// The packed backend: a contiguous 3-bit DNA arena (the paper's §6
// "Dictionary Compression") laid out exactly like the scan arena — one word
// slab, slots bucketed by (length, ID) — plus a per-slot frequency-vector
// slab so cascade stage 2 reads five ints instead of the sequence.
package cascade

import (
	"context"
	"fmt"
	"math"

	"simsearch/internal/bitpack"
	"simsearch/internal/filter"
	"simsearch/internal/scan"
)

// dnaSyms is the tracked DNA alphabet size (codes 1..5: A, C, G, N, T).
const dnaSyms = 5

// packedQ is the gram size of the packed q-gram stage. Three 3-bit codes
// index a 512-entry profile, small enough to live in a per-query plan.
const packedQ = 3

// packedGramSpace is the number of distinct packed 3-grams (8^3).
const packedGramSpace = 1 << (3 * packedQ)

// packedArena is the 3-bit analogue of scan's byte arena. Slot s holds
// lens[s] symbols packed into words[wordOff[s] : wordOff[s]+PackedWords],
// each slot starting at a word boundary with zero padding, so
// bitpack.View(slot) is a valid Seq without copying. freq holds dnaSyms
// counts per slot (code order A, C, G, N, T), slot-major.
type packedArena struct {
	words    []uint64
	wordOff  []int32
	lens     []int32
	ids      []int32
	lenStart []int32 // bucket of length l spans [lenStart[l], lenStart[l+1])
	maxLen   int
	freq     []int32
}

// buildPackedArena packs all-DNA data with the same counting sort by
// (length, ID) as scan.buildArena, so every bucket emits ID-sorted matches
// by construction.
func buildPackedArena(data []string) *packedArena {
	maxLen := 0
	totalWords := 0
	for _, s := range data {
		if len(s) > maxLen {
			maxLen = len(s)
		}
		totalWords += bitpack.PackedWords(len(s))
	}
	if totalWords > math.MaxInt32 {
		panic(fmt.Sprintf("cascade: packed arena supports at most %d words, got %d", math.MaxInt32, totalWords))
	}
	a := &packedArena{
		words:    make([]uint64, totalWords),
		wordOff:  make([]int32, len(data)),
		lens:     make([]int32, len(data)),
		ids:      make([]int32, len(data)),
		lenStart: make([]int32, maxLen+2),
		maxLen:   maxLen,
		freq:     make([]int32, dnaSyms*len(data)),
	}
	counts := make([]int32, maxLen+1)
	for _, s := range data {
		counts[len(s)]++
	}
	var slot int32
	for l := 0; l <= maxLen; l++ {
		a.lenStart[l] = slot
		slot += counts[l]
	}
	a.lenStart[maxLen+1] = slot
	next := make([]int32, maxLen+1)
	copy(next, a.lenStart[:maxLen+1])
	wordStart := make([]int32, maxLen+1)
	var off int32
	for l := 0; l <= maxLen; l++ {
		wordStart[l] = off
		off += counts[l] * int32(bitpack.PackedWords(l))
	}
	for i, s := range data {
		sl := next[len(s)]
		next[len(s)]++
		a.ids[sl] = int32(i)
		a.lens[sl] = int32(len(s))
		wo := wordStart[len(s)]
		wordStart[len(s)] += int32(bitpack.PackedWords(len(s)))
		a.wordOff[sl] = wo
		bitpack.PackInto(a.words[wo:wo+int32(bitpack.PackedWords(len(s)))], s)
		row := a.freq[int(sl)*dnaSyms : int(sl)*dnaSyms+dnaSyms]
		for j := 0; j < len(s); j++ {
			row[bitpack.Code(s[j])-1]++
		}
	}
	return a
}

// slotRange returns the slots holding strings with length in [lo, hi],
// clamped to the dataset's length range.
func (a *packedArena) slotRange(lo, hi int) (int32, int32) {
	if lo < 0 {
		lo = 0
	}
	if hi > a.maxLen {
		hi = a.maxLen
	}
	if lo > hi || len(a.ids) == 0 {
		return 0, 0
	}
	return a.lenStart[lo], a.lenStart[hi+1]
}

// view returns slot s as a zero-copy packed sequence.
func (a *packedArena) view(s int32) bitpack.Seq {
	w := a.wordOff[s]
	return bitpack.View(a.words[w:w+int32(bitpack.PackedWords(int(a.lens[s])))], int(a.lens[s]))
}

// freqRow returns slot s's precomputed frequency vector.
func (a *packedArena) freqRow(s int32) []int32 {
	return a.freq[int(s)*dnaSyms : int(s)*dnaSyms+dnaSyms]
}

// buckets returns the number of distinct, non-empty length buckets.
func (a *packedArena) buckets() int {
	n := 0
	for l := 0; l <= a.maxLen; l++ {
		if a.lenStart[l+1] > a.lenStart[l] {
			n++
		}
	}
	return n
}

// packedPlan is the per-query compiled state of the packed cascade: the
// lossily packed query, its frequency vector, its 3-gram profile, and the
// kernel scratch. Everything per-candidate reuses this state; nothing in the
// sweep allocates.
type packedPlan struct {
	qseq    bitpack.Seq
	vq      [dnaSyms]int32
	profile [packedGramSpace]int32 // query gram multiplicities
	used    [packedGramSpace]int32 // candidate consumption, restored per candidate
	touched []uint16
	qGrams  int
	scratch bitpack.Scratch
}

// newPackedPlan compiles q once. PackLossy keeps non-DNA queries exact: the
// reserved code 0 never equals a stored symbol code, so distances match the
// byte-level DP (see bitpack.PackLossy).
func newPackedPlan(q string) *packedPlan {
	pl := &packedPlan{qseq: bitpack.PackLossy(q)}
	for i := 0; i < len(q); i++ {
		if c := bitpack.Code(q[i]); c != 0 {
			pl.vq[c-1]++
		}
	}
	if len(q) >= packedQ {
		pl.qGrams = len(q) - packedQ + 1
		gram := uint32(0)
		for i := 0; i < len(q); i++ {
			gram = (gram<<3 | uint32(pl.qseq.At(i))) & (packedGramSpace - 1)
			if i >= packedQ-1 {
				pl.profile[gram]++
			}
		}
	}
	return pl
}

// gramKeep reports whether the candidate shares at least bound 3-grams with
// the query. It streams the candidate's packed codes once, consuming query
// gram multiplicities, with two-sided early exit: accept as soon as the
// bound is met, reject as soon as the remaining grams cannot meet it.
func (pl *packedPlan) gramKeep(v bitpack.Seq, bound int) bool {
	cand := v.Len() - packedQ + 1
	if bound > pl.qGrams || bound > cand {
		return false
	}
	shared := 0
	remaining := cand
	keep := false
	gram := uint32(0)
	touched := pl.touched[:0]
	for i := 0; i < v.Len(); i++ {
		gram = (gram<<3 | uint32(v.At(i))) & (packedGramSpace - 1)
		if i < packedQ-1 {
			continue
		}
		remaining--
		if pl.used[gram] < pl.profile[gram] {
			shared++
		}
		pl.used[gram]++
		touched = append(touched, uint16(gram))
		if shared >= bound {
			keep = true
			break
		}
		if shared+remaining < bound {
			break
		}
	}
	for _, g := range touched {
		pl.used[g] = 0
	}
	pl.touched = touched[:0]
	return keep
}

// searchPacked runs the cascade over the packed arena. The slot window is
// the length filter; the loop polls ctx every ctxStride candidates like
// scan.scanArenaSlots, and stage counters are flushed on every exit path.
func (e *Engine) searchPacked(ctx context.Context, q string, k int) ([]Match, error) {
	pa := e.packed
	lo, hi := pa.slotRange(len(q)-k, len(q)+k)
	var visited, freqKept, gramKept uint64
	defer func() {
		e.candidates.Add(visited)
		e.freqSurvivors.Add(freqKept)
		e.qgramSurvivors.Add(gramKept)
		if e.comps != nil {
			e.comps.Add(gramKept)
		}
	}()
	if lo == hi {
		return nil, nil
	}
	pl := newPackedPlan(q)
	k32 := int32(k)
	ms := make([]Match, 0, 16)
	for s := lo; s < hi; s++ {
		if visited%ctxStride == ctxStride-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		visited++
		if !e.noFreq && freqBound(pl.vq[:], pa.freqRow(s)) > k32 {
			continue
		}
		freqKept++
		v := pa.view(s)
		if !e.noQGram {
			if b := filter.QGramCountBound(len(q), v.Len(), packedQ, k); b > 0 && !pl.gramKeep(v, b) {
				continue
			}
		}
		gramKept++
		if d, ok := bitpack.BoundedDistanceScratch(pl.qseq, v, k, &pl.scratch); ok {
			ms = append(ms, Match{ID: pa.ids[s], Dist: d})
		}
	}
	e.matches.Add(uint64(len(ms)))
	return scan.MergeRuns(ms), nil
}
