// Package cascade implements the paper's §6 future-work list as one serving
// engine: a filter cascade that funnels every query through
//
//	length bucket -> frequency-vector filter -> q-gram count filter -> verify
//
// where verify is the bounded Myers kernel. All query-side state — the
// frequency vector, the q-gram profile, and the compiled pattern — is built
// once per query; every per-candidate step is O(1) or O(len(candidate)) with
// zero allocations. Candidate-side state (per-slot frequency vectors, the
// length-bucketed layout) is precomputed at build time, PETER-style
// (Rheinländer et al., cited in PAPER §6).
//
// Stage order is by cost per candidate, cheapest first: the length bucket is
// a free O(1) slot-range lookup, the frequency bound reads a precomputed
// five-or-ten-entry vector, the q-gram count streams the candidate once, and
// only the survivors pay for the edit-distance kernel. See DESIGN §13 for
// why this ordering (rather than the filters' historical order) maximizes
// pruned work per instruction.
//
// For all-DNA datasets the engine stores a 3-bit packed arena
// (internal/bitpack) instead of raw bytes: each surviving comparison then
// touches ~3/8 the memory of a byte scan. Non-DNA queries against the packed
// arena stay exact via bitpack.PackLossy (the reserved code 0 mismatches
// every stored symbol, just as the unknown byte would).
//
// Every filter is sound — it never rejects a string within distance k — so
// the cascade returns exactly the matches a full scan would; the
// differential fuzz targets and the ablation identity test enforce this.
package cascade

import (
	"context"
	"sync/atomic"

	"simsearch/internal/bitpack"
	"simsearch/internal/scan"
)

// Match is a scan match: cascade results use dataset IDs and exact
// distances, in ID order, like every other engine.
type Match = scan.Match

// CompCounter counts comparisons, compatible with scan.CompCounter.
type CompCounter = scan.CompCounter

// ctxStride is how many candidate slots may be visited between context
// polls, mirroring internal/scan's cancellation stride.
const ctxStride = 1024

// Engine is the cascade searcher over a frozen dataset. It is safe for
// concurrent Search/SearchContext calls: all per-query state lives in a
// query plan, and the stage counters are atomic.
type Engine struct {
	n      int
	packed *packedArena // 3-bit DNA layout, nil when the data is not all-DNA
	bytes  *byteArena   // byte layout, nil when packed is active
	name   string

	noFreq  bool
	noQGram bool
	comps   CompCounter

	// Per-stage survivor counters, cumulative across queries. A disabled
	// stage passes everything through, so its survivor count equals its
	// input count and its prune rate reads as zero.
	queries        atomic.Uint64
	candidates     atomic.Uint64 // length-bucket survivors (slots visited)
	freqSurvivors  atomic.Uint64
	qgramSurvivors atomic.Uint64 // == verify-kernel invocations
	matches        atomic.Uint64
}

// Option configures an Engine.
type Option func(*Engine)

// WithoutFrequency disables the frequency-vector stage (ablation mode).
func WithoutFrequency() Option { return func(e *Engine) { e.noFreq = true } }

// WithoutQGram disables the q-gram count stage (ablation mode).
func WithoutQGram() Option { return func(e *Engine) { e.noQGram = true } }

// WithComparisonCounter adds a counter receiving the number of verify-kernel
// invocations (the comparisons the cascade could not prune).
func WithComparisonCounter(c CompCounter) Option { return func(e *Engine) { e.comps = c } }

// New builds a cascade engine over data. When every string is valid DNA
// (A, C, G, N, T) the candidate side is stored 3-bit packed; otherwise a
// byte arena with vowel frequency vectors is used. Both layouts are
// length-bucketed with IDs ascending inside each bucket.
func New(data []string, opts ...Option) *Engine {
	e := &Engine{n: len(data)}
	for _, o := range opts {
		o(e)
	}
	allDNA := true
	for _, s := range data {
		if !bitpack.Valid(s) {
			allDNA = false
			break
		}
	}
	if allDNA {
		e.packed = buildPackedArena(data)
		e.name = "cascade/packed"
	} else {
		e.bytes = buildByteArena(data)
		e.name = "cascade/bytes"
	}
	// Ablation variants answer differently-filtered workloads identically but
	// must never share a cache key with the full cascade.
	if e.noFreq {
		e.name += "-nofreq"
	}
	if e.noQGram {
		e.name += "-noqgram"
	}
	return e
}

// Len returns the dataset size.
func (e *Engine) Len() int { return e.n }

// Name identifies the engine and its active backend, e.g. "cascade/packed".
func (e *Engine) Name() string { return e.name }

// Packed reports whether the 3-bit DNA arena is active.
func (e *Engine) Packed() bool { return e.packed != nil }

// Search returns every dataset string within edit distance k of q, in ID
// order.
func (e *Engine) Search(q string, k int) []Match {
	ms, _ := e.SearchContext(context.Background(), q, k)
	return ms
}

// SearchContext is Search honoring cancellation: the slot sweep polls ctx
// every ctxStride candidates and returns ctx.Err() with partial results
// dropped.
func (e *Engine) SearchContext(ctx context.Context, q string, k int) ([]Match, error) {
	if k < 0 {
		return nil, nil
	}
	e.queries.Add(1)
	if e.packed != nil {
		return e.searchPacked(ctx, q, k)
	}
	return e.searchBytes(ctx, q, k)
}

// freqBound returns the frequency-vector lower bound on the edit distance:
// the larger one-sided L1 surplus between the query's vector and a
// precomputed candidate row (filter.Frequency.Bound over int32 rows).
func freqBound(vq, vx []int32) int32 {
	var over, under int32
	for i, a := range vq {
		d := a - vx[i]
		if d > 0 {
			over += d
		} else {
			under -= d
		}
	}
	if over > under {
		return over
	}
	return under
}

// Stats is a point-in-time snapshot of the engine's layout and cumulative
// per-stage survivor counters.
type Stats struct {
	Strings    int
	Packed     bool // 3-bit DNA arena active
	ArenaBytes int  // packed payload footprint
	Buckets    int  // non-empty length buckets

	Queries        uint64
	Candidates     uint64 // survivors of the length bucket (slots visited)
	FreqSurvivors  uint64 // survivors of the frequency-vector stage
	QGramSurvivors uint64 // survivors of the q-gram stage = verify calls
	Matches        uint64
}

// Stats returns the current snapshot.
func (e *Engine) Stats() Stats {
	st := Stats{
		Strings:        e.n,
		Packed:         e.packed != nil,
		Queries:        e.queries.Load(),
		Candidates:     e.candidates.Load(),
		FreqSurvivors:  e.freqSurvivors.Load(),
		QGramSurvivors: e.qgramSurvivors.Load(),
		Matches:        e.matches.Load(),
	}
	if e.packed != nil {
		st.ArenaBytes = len(e.packed.words) * 8
		st.Buckets = e.packed.buckets()
	} else {
		st.ArenaBytes = e.bytes.ar.Bytes()
		st.Buckets = e.bytes.ar.Buckets()
	}
	return st
}
