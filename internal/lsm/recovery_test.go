package lsm

// Crash-recovery suite: a store killed at any stage of a compaction (via the
// CompactHook), or before ever flushing its delta, must reopen into a state
// that answers exactly like an uninterrupted twin — and WAL replay must be
// idempotent, so re-applying a duplicated log suffix changes nothing.

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"simsearch/internal/core"
)

// script applies a deterministic op sequence: inserts, deletes, and periodic
// flushes so several segments exist by the end.
func script(t *testing.T, st *Store, universe []string) {
	t.Helper()
	for i, s := range universe {
		if _, _, err := st.Insert(s); err != nil {
			t.Fatalf("Insert(%q): %v", s, err)
		}
		if i%3 == 0 {
			if _, err := st.Delete(universe[i/2]); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		}
		if i%10 == 9 {
			if err := st.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
}

// twinModel replays the same script against the pure model.
func twinModel(universe []string) *model {
	m := newModel(nil)
	for i, s := range universe {
		m.insert(s)
		if i%3 == 0 {
			m.delete(universe[i/2])
		}
	}
	return m
}

func TestCrashMidCompactionRecovers(t *testing.T) {
	universe := take(t, dedupe(append(cityUniverse(150), dnaUniverse(30, 8)...)), 100)
	stages := []string{"merged", "written", "renamed", "removed-first"}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			var arm atomic.Bool
			st, err := Open(Options{
				Dir:         dir,
				FlushLimit:  1 << 20,
				MaxSegments: 100, // no background interference: the crash is scripted
				CompactHook: func(s string) bool {
					return !(arm.Load() && s == stage)
				},
			})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			script(t, st, universe)
			arm.Store(true)
			if err := st.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			// The abandoned compaction left disk mid-transition; drop
			// the process state on the floor.
			if err := st.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			re, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen after crash at %q: %v", stage, err)
			}
			defer re.Close()
			m := twinModel(universe)
			checkDict(t, re, m)
			checkAll(t, re, m, universe[:40], 2)
		})
	}
}

func TestUnflushedDeltaRecoversFromWAL(t *testing.T) {
	universe := take(t, dedupe(cityUniverse(80)), 50)
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, FlushLimit: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// No flush ever happens: everything lives in the delta + WAL.
	for _, s := range universe {
		st.Insert(s)
	}
	st.Delete(universe[3])
	st.Delete(universe[7])
	if got := st.Stats().Segments; got != 0 {
		t.Fatalf("pre-crash segments: %d, want 0", got)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	m := newModel(universe)
	m.delete(universe[3])
	m.delete(universe[7])
	checkDict(t, re, m)
	checkAll(t, re, m, universe, 2)
}

func TestWALReplayIdempotent(t *testing.T) {
	universe := take(t, dedupe(cityUniverse(60)), 40)
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, FlushLimit: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, s := range universe {
		st.Insert(s)
	}
	st.Delete(universe[5])
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Duplicate the WAL payload after the header, simulating a log whose
	// suffix gets replayed twice.
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read WAL: %v", err)
	}
	if len(raw) <= len(walMagic) {
		t.Fatalf("WAL unexpectedly empty (%d bytes)", len(raw))
	}
	dup := append(append([]byte{}, raw...), raw[len(walMagic):]...)
	if err := os.WriteFile(walPath, dup, 0o644); err != nil {
		t.Fatalf("write duplicated WAL: %v", err)
	}

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with duplicated WAL: %v", err)
	}
	defer re.Close()
	m := newModel(universe)
	m.delete(universe[5])
	checkDict(t, re, m)
	checkAll(t, re, m, universe, 2)
}

func TestTornWALTailRecovers(t *testing.T) {
	universe := take(t, dedupe(cityUniverse(60)), 30)
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, FlushLimit: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, s := range universe {
		st.Insert(s)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Chop the last record in half: a crash mid-append. Recovery keeps
	// every complete record and drops the torn tail.
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read WAL: %v", err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatalf("truncate WAL: %v", err)
	}

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with torn WAL: %v", err)
	}
	defer re.Close()
	// The final insert is lost (it never fully reached the log); all
	// prior ones survive.
	m := newModel(universe[:len(universe)-1])
	checkDict(t, re, m)
	checkAll(t, re, m, universe, 2)
}

func TestRecoveryCheckpointsToSingleSegment(t *testing.T) {
	universe := take(t, dedupe(cityUniverse(80)), 50)
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, FlushLimit: 5, MaxSegments: 100})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, s := range universe {
		st.Insert(s)
	}
	pre := st.Stats()
	if pre.Segments < 2 {
		t.Fatalf("want several segments before reopen, got %d", pre.Segments)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Stats().Segments; got != 1 {
		t.Fatalf("segments after recovery checkpoint: %d, want 1", got)
	}
	// Exactly one segment file and a header-only WAL remain on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	segFiles := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			segFiles++
		}
	}
	if segFiles != 1 {
		t.Fatalf("segment files after checkpoint: %d, want 1", segFiles)
	}
	m := newModel(universe)
	checkDict(t, re, m)
	checkSearch(t, re, m, core.Query{Text: universe[0], K: 2})
}
