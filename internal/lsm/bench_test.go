package lsm

import (
	"fmt"
	"testing"

	"simsearch/internal/core"
)

// BenchmarkLiveInsert measures the write path: WAL-less insert into the
// delta with periodic flushes at the default limit.
func BenchmarkLiveInsert(b *testing.B) {
	st, err := Open(Options{MaxSegments: 1 << 30})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Insert(fmt.Sprintf("bench-string-%d", i)); err != nil {
			b.Fatalf("Insert: %v", err)
		}
	}
}

// BenchmarkLiveSearch measures a query over a store with a populated delta
// in front of several segments — the shape a live service actually scans.
func BenchmarkLiveSearch(b *testing.B) {
	st, err := Open(Options{FlushLimit: 1 << 20, MaxSegments: 100})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer st.Close()
	for i := 0; i < 4096; i++ {
		st.Insert(fmt.Sprintf("segment-string-%d", i))
		if i%1024 == 1023 {
			if err := st.Flush(); err != nil {
				b.Fatalf("Flush: %v", err)
			}
		}
	}
	for i := 0; i < 256; i++ {
		st.Insert(fmt.Sprintf("delta-string-%d", i))
	}
	q := core.Query{Text: "segment-string-2048", K: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ms := st.Search(q); len(ms) == 0 {
			b.Fatal("no matches")
		}
	}
}
