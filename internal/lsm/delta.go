package lsm

import (
	"sort"

	"simsearch/internal/core"
	"simsearch/internal/edit"
)

// delta is the small mutable front of the store: the set of (id, op) pairs
// written since the last flush. Live inserts additionally appear in byLen, a
// view sorted by (length, id) that mirrors the arena's slot order, so the
// delta scan applies the same length filter and emits the same ID-ascending
// runs per length bucket as a segment scan.
type delta struct {
	// ops maps id -> live. A true entry is an insert not yet flushed; a
	// false entry is a tombstone not yet flushed. Presence alone means the
	// delta owns the newest version of that id and shadows every segment.
	ops   map[int32]bool
	byLen []deltaEntry // live entries, sorted by (n, id)
}

// deltaEntry is one live delta string, identified by id with its byte length
// cached for the length filter (the bytes themselves live in the dictionary).
type deltaEntry struct {
	id int32
	n  int32
}

func newDelta() *delta {
	return &delta{ops: make(map[int32]bool)}
}

func (d *delta) size() int { return len(d.ops) }

// find returns the byLen insertion point for (n, id).
func (d *delta) find(n, id int32) int {
	return sort.Search(len(d.byLen), func(i int) bool {
		e := d.byLen[i]
		if e.n != n {
			return e.n >= n
		}
		return e.id >= id
	})
}

// setLive records id (a string of n bytes) as inserted. The caller guarantees
// id is not currently live in the delta.
func (d *delta) setLive(id, n int32) {
	d.ops[id] = true
	i := d.find(n, id)
	d.byLen = append(d.byLen, deltaEntry{})
	copy(d.byLen[i+1:], d.byLen[i:])
	d.byLen[i] = deltaEntry{id: id, n: n}
}

// setDead records id (a string of n bytes) as deleted. If the delta held the
// live insert, the byLen view entry is removed.
func (d *delta) setDead(id, n int32) {
	if live, ok := d.ops[id]; ok && live {
		i := d.find(n, id)
		d.byLen = append(d.byLen[:i], d.byLen[i+1:]...)
	}
	d.ops[id] = false
}

// deltaStride is how many delta strings are compared between two cancellation
// polls. The delta is bounded by the flush limit, so this mirrors the arena's
// ctxStride more for symmetry than for latency.
const deltaStride = 1024

// scanDeltaLocked streams the delta's length-window entries through the
// compiled pattern. Must be called with st.mu held (read or write): it reads
// the delta view and the dictionary. Returns ID-sorted matches; ok=false when
// cancelled.
func (st *Store) scanDeltaLocked(p *edit.MyersPattern, k int, cancel <-chan struct{}) ([]core.Match, bool) {
	d := st.delta
	if len(d.byLen) == 0 {
		return nil, true
	}
	lo := int32(p.Len() - k)
	if lo < 0 {
		lo = 0
	}
	hi := int32(p.Len() + k)
	var ms []core.Match
	var pairs uint64
	var scratch edit.MyersScratch
	for i := d.find(lo, 0); i < len(d.byLen); i++ {
		e := d.byLen[i]
		if e.n > hi {
			break
		}
		if cancel != nil && pairs%deltaStride == deltaStride-1 {
			select {
			case <-cancel:
				return nil, false
			default:
			}
		}
		pairs++
		if dist, ok := p.BoundedDistance(st.dict[e.id], k, &scratch); ok {
			ms = append(ms, core.Match{ID: e.id, Dist: dist})
		}
	}
	// byLen order is (length, id): the matches are a concatenation of
	// ID-ascending runs, one per length bucket.
	return mergeRuns(ms), true
}
