package lsm

// Write-ahead log. Every mutation is appended (one Write syscall per record)
// before it is applied to the delta, so an unflushed delta is recoverable
// after a crash. A flush makes the delta durable as a segment file and then
// resets the WAL to just its header; a crash between those two steps leaves
// records in the WAL that are already covered by the segment — replay filters
// them by sequence number, and the operations themselves are idempotent
// anyway (re-inserting a live id and re-tombstoning a dead one are no-ops).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// walMagic identifies the log format; the trailing digit is the version.
var walMagic = []byte("SIMWAL1\n")

const (
	walOpInsert byte = 1
	walOpDelete byte = 2
)

// ErrBadWAL reports a log file that is not a WAL of the supported version.
var ErrBadWAL = errors.New("lsm: bad WAL format")

// walRec is one logged mutation.
type walRec struct {
	seq  uint64
	id   int32
	s    string
	live bool
}

// wal is the append handle. Writes are unbuffered: each record reaches the
// kernel before the mutation is acknowledged.
type wal struct {
	f *os.File
}

// openWAL opens (creating if needed) the log for appending. A fresh or empty
// file gets the header written; an existing file is positioned at its end.
// Replay is the reader's job (readWAL) — this handle only appends.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return nil, err
		}
	} else if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f}, nil
}

// append logs one record durably (single write syscall).
func (w *wal) append(r walRec) error {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(r.s)+1)
	buf = binary.AppendUvarint(buf, r.seq)
	op := walOpDelete
	if r.live {
		op = walOpInsert
	}
	buf = append(buf, op)
	buf = binary.AppendUvarint(buf, uint64(uint32(r.id)))
	buf = binary.AppendUvarint(buf, uint64(len(r.s)))
	buf = append(buf, r.s...)
	_, err := w.f.Write(buf)
	return err
}

// reset truncates the log back to just its header, called after a flush made
// the delta durable as a segment file.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := w.f.Write(walMagic)
	return err
}

func (w *wal) close() error { return w.f.Close() }

// readWAL replays the log at path. A missing file is an empty log. A torn
// tail — a record cut short by a crash mid-write — ends replay at the last
// complete record rather than failing; a corrupt header or absurd field still
// fails loudly.
func readWAL(path string) ([]walRec, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF {
			return nil, nil // zero-length file: treated as empty
		}
		return nil, fmt.Errorf("%w: %v", ErrBadWAL, err)
	}
	if string(head) != string(walMagic) {
		return nil, fmt.Errorf("%w: magic mismatch", ErrBadWAL)
	}
	var recs []walRec
	for {
		seq, err := binary.ReadUvarint(br)
		if err != nil {
			break // EOF or torn varint: end of replayable log
		}
		op, err := br.ReadByte()
		if err != nil {
			break
		}
		if op != walOpInsert && op != walOpDelete {
			return nil, fmt.Errorf("%w: unknown op %d", ErrBadWAL, op)
		}
		id, err := binary.ReadUvarint(br)
		if err != nil {
			break
		}
		if id > 1<<31 {
			return nil, fmt.Errorf("%w: absurd id %d", ErrBadWAL, id)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			break
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("%w: absurd string length %d", ErrBadWAL, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			break // torn payload
		}
		recs = append(recs, walRec{
			seq:  seq,
			id:   int32(uint32(id)),
			s:    string(buf),
			live: op == walOpInsert,
		})
	}
	return recs, nil
}
