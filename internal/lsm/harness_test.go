package lsm

// Shared harness for the differential tests: a pure-Go model of the
// dictionary contract (string<->id bindings, liveness, id allocation order)
// and the rebuild-from-scratch frozen oracle that search results must match
// byte for byte.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"simsearch/internal/core"
)

// model mirrors the dictionary contract independently of the store: first
// insert binds the next free id, delete tombstones, re-insert revives.
type model struct {
	idOf  map[string]int32
	strOf map[int32]string
	live  map[int32]bool
	next  int32
}

func newModel(seed []string) *model {
	m := &model{
		idOf:  make(map[string]int32),
		strOf: make(map[int32]string),
		live:  make(map[int32]bool),
	}
	for _, s := range seed {
		m.insert(s)
	}
	return m
}

func (m *model) insert(s string) {
	id, ok := m.idOf[s]
	if !ok {
		id = m.next
		m.next++
		m.idOf[s] = id
		m.strOf[id] = s
	}
	m.live[id] = true
}

func (m *model) delete(s string) {
	if id, ok := m.idOf[s]; ok {
		m.live[id] = false
	}
}

// liveSet returns the live dictionary ascending by id.
func (m *model) liveSet() ([]int32, []string) {
	var ids []int32
	for id := int32(0); id < m.next; id++ {
		if m.live[id] {
			ids = append(ids, id)
		}
	}
	strs := make([]string, len(ids))
	for i, id := range ids {
		strs[i] = m.strOf[id]
	}
	return ids, strs
}

// expect answers q with the paper's reference scan rebuilt from scratch over
// the model's live strings, remapped to dictionary ids. Remapping preserves
// ID order because ids ascend with dense oracle indices.
func (m *model) expect(q core.Query) []core.Match {
	ids, strs := m.liveSet()
	ms := core.Reference(strs).Search(q)
	out := make([]core.Match, 0, len(ms))
	for _, r := range ms {
		out = append(out, core.Match{ID: ids[r.ID], Dist: r.Dist})
	}
	return out
}

// checkDict fails the test when the store's live dictionary diverges from
// the model's.
func checkDict(t *testing.T, st *Store, m *model) {
	t.Helper()
	wantIDs, wantStrs := m.liveSet()
	gotIDs, gotStrs := st.LiveStrings()
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("live dictionary size: got %d, want %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] || gotStrs[i] != wantStrs[i] {
			t.Fatalf("live dictionary entry %d: got (%d, %q), want (%d, %q)",
				i, gotIDs[i], gotStrs[i], wantIDs[i], wantStrs[i])
		}
	}
}

// checkSearch fails the test when the store's answer for q is not
// byte-identical to the frozen oracle's.
func checkSearch(t *testing.T, st *Store, m *model, q core.Query) {
	t.Helper()
	got := st.Search(q)
	want := m.expect(q)
	if !core.Equal(got, want) {
		t.Fatalf("query %+v: got %v, want %v", q, got, want)
	}
}

// checkAll sweeps a query set derived from the universe strings.
func checkAll(t *testing.T, st *Store, m *model, universe []string, k int) {
	t.Helper()
	for _, s := range universe {
		checkSearch(t, st, m, core.Query{Text: s, K: k})
	}
	checkSearch(t, st, m, core.Query{Text: "", K: k})
	checkSearch(t, st, m, core.Query{Text: "zzzzqqqq", K: k})
}

// mutate returns s with one position changed, so queries hit near-misses.
func mutate(s string, pos int) string {
	if s == "" {
		return "x"
	}
	b := []byte(s)
	i := pos % len(b)
	b[i] = b[i] + 1
	return string(b)
}

// cityUniverse and dnaUniverse are small deterministic datasets on the two
// benchmark alphabets (mixed-case prose-like strings and ACGT reads).
func cityUniverse(n int) []string {
	rng := rand.New(rand.NewSource(7))
	names := []string{"berlin", "bern", "bonn", "bremen", "munich", "ulm", "augsburg", "aachen", "kassel", "koblenz"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		base := names[rng.Intn(len(names))]
		switch rng.Intn(3) {
		case 0:
			out = append(out, base)
		case 1:
			out = append(out, base+fmt.Sprintf("-%d", rng.Intn(1000)))
		default:
			out = append(out, mutate(base, rng.Intn(len(base))))
		}
	}
	return out
}

func dnaUniverse(n, length int) []string {
	rng := rand.New(rand.NewSource(11))
	out := make([]string, 0, n)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.Reset()
		for j := 0; j < length; j++ {
			sb.WriteByte("ACGT"[rng.Intn(4)])
		}
		out = append(out, sb.String())
	}
	return out
}

// dedupe keeps first occurrences, preserving order — seed slices must be
// duplicate-free for the id contract to be caller-visible.
func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// take returns exactly n distinct universe strings, failing loudly instead
// of silently slicing past the deduplicated length.
func take(t *testing.T, universe []string, n int) []string {
	t.Helper()
	if len(universe) < n {
		t.Fatalf("universe has %d distinct strings, need %d", len(universe), n)
	}
	return universe[:n:n]
}

// seedEntries binds strs to ids 0..n-1, the frozen-engine-compatible layout.
func seedEntries(strs []string) []SeedEntry {
	out := make([]SeedEntry, len(strs))
	for i, s := range strs {
		out[i] = SeedEntry{ID: int32(i), S: s}
	}
	return out
}
