package lsm

import (
	"testing"

	"simsearch/internal/core"
)

func mustOpen(t *testing.T, o Options) *Store {
	t.Helper()
	st, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestInsertDeleteSearch(t *testing.T) {
	universe := take(t, dedupe(cityUniverse(200)), 60)
	seed := universe[:20]
	st := mustOpen(t, Options{Seed: seedEntries(seed), FlushLimit: 8, MaxSegments: 100})
	m := newModel(seed)

	checkAll(t, st, m, universe, 2)
	for i, s := range universe[20:50] {
		id, added, err := st.Insert(s)
		if err != nil {
			t.Fatalf("Insert(%q): %v", s, err)
		}
		if !added {
			t.Fatalf("Insert(%q): reported no change for a new string", s)
		}
		if want := int32(20 + i); id != want {
			t.Fatalf("Insert(%q): id %d, want %d", s, id, want)
		}
		m.insert(s)
	}
	checkDict(t, st, m)
	checkAll(t, st, m, universe, 2)

	// Re-inserting a live string is a no-op and keeps the id.
	id0, added, err := st.Insert(universe[0])
	if err != nil || added || id0 != 0 {
		t.Fatalf("re-insert of live string: id=%d added=%v err=%v", id0, added, err)
	}

	for _, s := range universe[10:30] {
		changed, err := st.Delete(s)
		if err != nil {
			t.Fatalf("Delete(%q): %v", s, err)
		}
		if !changed {
			t.Fatalf("Delete(%q): reported no change for a live string", s)
		}
		m.delete(s)
	}
	if changed, _ := st.Delete("never-inserted"); changed {
		t.Fatal("Delete of unknown string reported a change")
	}
	checkDict(t, st, m)
	checkAll(t, st, m, universe, 2)
}

func TestReinsertRevivesID(t *testing.T) {
	st := mustOpen(t, Options{FlushLimit: 2, MaxSegments: 100})
	id1, _, _ := st.Insert("alpha")
	st.Insert("beta")
	st.Insert("gamma") // forces a flush at limit 2
	if changed, _ := st.Delete("alpha"); !changed {
		t.Fatal("delete of alpha reported no change")
	}
	st.Flush()
	id2, added, err := st.Insert("alpha")
	if err != nil || !added {
		t.Fatalf("revive: added=%v err=%v", added, err)
	}
	if id1 != id2 {
		t.Fatalf("revived id %d, want original %d", id2, id1)
	}
}

func TestFlushAndCompactPreserveResults(t *testing.T) {
	universe := dedupe(append(cityUniverse(40), dnaUniverse(20, 12)...))
	st := mustOpen(t, Options{FlushLimit: 1 << 20, MaxSegments: 100})
	m := newModel(nil)
	for i, s := range universe {
		st.Insert(s)
		m.insert(s)
		if i%7 == 3 {
			if err := st.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
		if i%13 == 11 {
			if err := st.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		}
	}
	checkDict(t, st, m)
	checkAll(t, st, m, universe, 2)
	if err := st.Flush(); err != nil {
		t.Fatalf("final Flush: %v", err)
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("final Compact: %v", err)
	}
	stats := st.Stats()
	if stats.Segments != 1 {
		t.Fatalf("after full compaction: %d segments, want 1", stats.Segments)
	}
	checkDict(t, st, m)
	checkAll(t, st, m, universe, 2)
}

func TestTombstonesSurviveCompaction(t *testing.T) {
	st := mustOpen(t, Options{FlushLimit: 1 << 20, MaxSegments: 100})
	st.Insert("alpha")
	st.Insert("beta")
	st.Flush()
	st.Delete("alpha")
	st.Flush()
	st.Compact()
	stats := st.Stats()
	if stats.Tombstones != 1 || stats.Live != 1 {
		t.Fatalf("after compaction: %+v, want 1 tombstone and 1 live", stats)
	}
	// The binding survives: reviving yields the original id.
	id, _, _ := st.Insert("alpha")
	if id != 0 {
		t.Fatalf("revived alpha id %d, want 0", id)
	}
}

func TestLengthWindow(t *testing.T) {
	st := mustOpen(t, Options{FlushLimit: 1 << 20})
	for _, s := range []string{"a", "ab", "abc", "abcd", "abcdefgh"} {
		st.Insert(s)
	}
	got := st.Search(core.Query{Text: "abc", K: 1})
	want := []core.Match{{ID: 1, Dist: 1}, {ID: 2, Dist: 0}, {ID: 3, Dist: 1}}
	if !core.Equal(got, want) {
		t.Fatalf("length-window query: got %v, want %v", got, want)
	}
}

func TestNegativeKAndEmptyStore(t *testing.T) {
	st := mustOpen(t, Options{})
	if ms := st.Search(core.Query{Text: "x", K: -1}); ms != nil {
		t.Fatalf("negative k: got %v, want nil", ms)
	}
	if ms := st.Search(core.Query{Text: "x", K: 3}); ms != nil {
		t.Fatalf("empty store: got %v, want nil", ms)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	st, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st.Insert("alpha")
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := st.Insert("beta"); err != ErrClosed {
		t.Fatalf("Insert after Close: %v, want ErrClosed", err)
	}
	if _, err := st.Delete("alpha"); err != ErrClosed {
		t.Fatalf("Delete after Close: %v, want ErrClosed", err)
	}
	if err := st.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	if err := st.Compact(); err != ErrClosed {
		t.Fatalf("Compact after Close: %v, want ErrClosed", err)
	}
}

func TestVersionAdvancesOnlyOnChange(t *testing.T) {
	st := mustOpen(t, Options{})
	v0 := st.Version()
	st.Insert("alpha")
	v1 := st.Version()
	if v1 == v0 {
		t.Fatal("insert did not advance the version")
	}
	st.Insert("alpha") // no-op
	if st.Version() != v1 {
		t.Fatal("no-op insert advanced the version")
	}
	st.Delete("missing") // no-op
	if st.Version() != v1 {
		t.Fatal("no-op delete advanced the version")
	}
	st.Delete("alpha")
	if st.Version() == v1 {
		t.Fatal("delete did not advance the version")
	}
}

func TestStringAt(t *testing.T) {
	st := mustOpen(t, Options{})
	id, _, _ := st.Insert("alpha")
	if s, ok := st.StringAt(id); !ok || s != "alpha" {
		t.Fatalf("StringAt(%d) = %q, %v", id, s, ok)
	}
	st.Delete("alpha")
	// Bindings are permanent: ids in already-captured results still resolve.
	if s, ok := st.StringAt(id); !ok || s != "alpha" {
		t.Fatalf("StringAt after delete = %q, %v", s, ok)
	}
	if _, ok := st.StringAt(9999); ok {
		t.Fatal("StringAt of unknown id reported ok")
	}
}

func TestSeedMatchesFrozenByteForByte(t *testing.T) {
	seed := dedupe(cityUniverse(50))
	st := mustOpen(t, Options{Seed: seedEntries(seed)})
	frozen := core.Reference(seed)
	for _, s := range seed {
		q := core.Query{Text: mutate(s, 1), K: 2}
		if got, want := st.Search(q), frozen.Search(q); !core.Equal(got, want) {
			t.Fatalf("seeded store diverges from frozen engine on %+v: got %v, want %v", q, got, want)
		}
	}
}
