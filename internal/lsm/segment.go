package lsm

import (
	"sort"

	"simsearch/internal/core"
	"simsearch/internal/edit"
	"simsearch/internal/scan"
)

// record is one (id, string, liveness) triple — the unit of flushing,
// compaction, and serialization. The id<->string binding is permanent; only
// liveness changes over a record's lifetime.
type record struct {
	id   int32
	s    string
	live bool
}

// segment is an immutable generation of the store: the newest-wins state of
// every id it covers, with the live strings packed into a scan arena. All
// fields are read-only after newSegment returns, so searches and the
// compactor share segments without locks.
type segment struct {
	gen    uint64 // file-naming generation (unique, monotonic)
	maxSeq uint64 // newest WAL sequence folded into this segment
	// Live records, ascending by id; strs is parallel to ids and is the
	// arena's input, so an arena match's slot-local ID indexes both.
	ids  []int32
	strs []string
	// Tombstones, ascending by id. The strings ride along so compaction
	// and serialization never need the store's dictionary.
	dead     []int32
	deadStrs []string
	// state holds every id the segment covers: presence means "this
	// segment knows id", the value is its liveness. Newer segments shadow
	// older ones through this map.
	state map[int32]bool
	arena *scan.Arena
}

// newSegment builds a segment from records sorted by ascending id.
func newSegment(gen, maxSeq uint64, recs []record) *segment {
	seg := &segment{gen: gen, maxSeq: maxSeq, state: make(map[int32]bool, len(recs))}
	for _, r := range recs {
		seg.state[r.id] = r.live
		if r.live {
			seg.ids = append(seg.ids, r.id)
			seg.strs = append(seg.strs, r.s)
		} else {
			seg.dead = append(seg.dead, r.id)
			seg.deadStrs = append(seg.deadStrs, r.s)
		}
	}
	seg.arena = scan.NewArena(seg.strs)
	return seg
}

// search runs the compiled pattern over the segment's live strings and remaps
// slot-local match IDs to global ids. Output stays ID-ascending because ids
// is ascending. ok=false when cancelled.
func (seg *segment) search(p *edit.MyersPattern, k int, cancel <-chan struct{}) ([]core.Match, bool) {
	ms, ok := seg.arena.Search(p, k, cancel)
	if !ok {
		return nil, false
	}
	if len(ms) == 0 {
		return nil, true
	}
	out := make([]core.Match, len(ms))
	for i, m := range ms {
		out[i] = core.Match{ID: seg.ids[m.ID], Dist: m.Dist}
	}
	return out, true
}

// records returns every record the segment covers (live and dead), ascending
// by id — the input form for compaction merges and serialization.
func (seg *segment) records() []record {
	out := make([]record, 0, len(seg.ids)+len(seg.dead))
	i, j := 0, 0
	for i < len(seg.ids) && j < len(seg.dead) {
		if seg.ids[i] < seg.dead[j] {
			out = append(out, record{id: seg.ids[i], s: seg.strs[i], live: true})
			i++
		} else {
			out = append(out, record{id: seg.dead[j], s: seg.deadStrs[j], live: false})
			j++
		}
	}
	for ; i < len(seg.ids); i++ {
		out = append(out, record{id: seg.ids[i], s: seg.strs[i], live: true})
	}
	for ; j < len(seg.dead); j++ {
		out = append(out, record{id: seg.dead[j], s: seg.deadStrs[j], live: false})
	}
	return out
}

// mergeSegments folds the given segments (newest first, the in-memory order)
// into one newest-wins segment. Tombstones are kept: the id<->string binding
// must survive so a later re-insert revives the original id. The merged
// segment carries the newest input's maxSeq — ordering on recovery is by
// maxSeq, so segments flushed while the merge ran stay newer — and a fresh
// gen for file naming.
func mergeSegments(inputs []*segment, gen uint64) *segment {
	state := make(map[int32]record)
	for i := len(inputs) - 1; i >= 0; i-- {
		for _, r := range inputs[i].records() {
			state[r.id] = r
		}
	}
	recs := make([]record, 0, len(state))
	for _, r := range state {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].id < recs[b].id })
	return newSegment(gen, inputs[0].maxSeq, recs)
}

// mergeRuns sorts a match slice that is a concatenation of ID-ascending runs
// by merging runs bottom-up (the scan-package algorithm, restated over
// core.Match). Run boundaries are exactly the ID descents.
func mergeRuns(ms []core.Match) []core.Match {
	if len(ms) < 2 {
		return ms
	}
	starts := []int{0}
	for i := 1; i < len(ms); i++ {
		if ms[i].ID <= ms[i-1].ID {
			starts = append(starts, i)
		}
	}
	if len(starts) == 1 {
		return ms
	}
	buf := make([]core.Match, len(ms))
	src, dst := ms, buf
	for len(starts) > 1 {
		ns := make([]int, 0, (len(starts)+1)/2)
		for i := 0; i < len(starts); i += 2 {
			lo := starts[i]
			if i+1 == len(starts) {
				copy(dst[lo:], src[lo:])
				ns = append(ns, lo)
				continue
			}
			mid := starts[i+1]
			hi := len(src)
			if i+2 < len(starts) {
				hi = starts[i+2]
			}
			mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi])
			ns = append(ns, lo)
		}
		starts = ns
		src, dst = dst, src
	}
	return src
}

// mergeInto merges two ID-ascending runs into out (len(out) == len(a)+len(b)).
func mergeInto(out, a, b []core.Match) {
	i, j, o := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].ID < b[j].ID {
			out[o] = a[i]
			i++
		} else {
			out[o] = b[j]
			j++
		}
		o++
	}
	copy(out[o:], a[i:])
	copy(out[o+len(a)-i:], b[j:])
}
