// Package lsm implements the live mutable dictionary: an LSM-style store
// with a small mutable delta in front of immutable, length-bucketed arena
// segments, tombstones for deletes, a size-triggered background compactor,
// and crash-safe persistence (segment files + a replayable write-ahead log).
//
// The dictionary contract: each distinct string is bound to one id at first
// insert, delete tombstones the id, and re-inserting the same string revives
// the same id. Bindings are never forgotten — tombstones survive compaction —
// so search results over the live store map 1:1 onto a frozen engine built
// over the same live strings (the differential harness in this package
// enforces that, byte for byte, under every interleaving of writes, flushes,
// compactions, and crashes).
package lsm

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"simsearch/internal/core"
	"simsearch/internal/edit"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("lsm: store is closed")

// Default tuning; see Options.
const (
	defaultFlushLimit  = 1024
	defaultMaxSegments = 4
)

// IDAlloc hands out monotonically increasing ids. One allocator can be
// shared by several stores (the sharded executor does this) so ids stay
// globally unique; recovery raises the floor past every persisted id.
type IDAlloc struct {
	next atomic.Int64
}

// alloc returns the next fresh id.
func (a *IDAlloc) alloc() int32 {
	return int32(a.next.Add(1) - 1)
}

// Raise lifts the allocator floor so the next id is at least min.
func (a *IDAlloc) Raise(min int32) {
	for {
		cur := a.next.Load()
		if cur >= int64(min) {
			return
		}
		if a.next.CompareAndSwap(cur, int64(min)) {
			return
		}
	}
}

// SeedEntry is one initial dictionary binding: the caller fixes the id so a
// seeded store matches a frozen engine over the same slice id-for-id.
type SeedEntry struct {
	ID int32
	S  string
}

// Options configures Open.
type Options struct {
	// Dir is the persistence directory; empty means memory-only (no WAL,
	// no segment files, nothing survives Close).
	Dir string
	// Seed is the initial live dictionary, applied only when Dir holds no
	// prior state. Entries must have unique ids and distinct strings.
	Seed []SeedEntry
	// FlushLimit is the delta size that triggers an automatic flush
	// (default 1024).
	FlushLimit int
	// MaxSegments is the segment count above which a flush schedules a
	// background compaction (default 4).
	MaxSegments int
	// Alloc is the id allocator; nil gets a private one. Shared across
	// stores when several shards must draw from one id space.
	Alloc *IDAlloc
	// CompactHook, when set, is called at named stages of a compaction;
	// returning false abandons the compaction at that point, leaving disk
	// state mid-transition. Test-only: this is how the crash-recovery
	// suite simulates dying mid-compaction.
	CompactHook func(stage string) bool
}

// Store is the live mutable dictionary engine. It implements core.Searcher
// and core.ContextSearcher; mutations go through Insert and Delete.
type Store struct {
	mu    sync.RWMutex
	dict  map[int32]string // every binding ever made, live or dead
	index map[string]int32 // inverse of dict
	delta *delta
	segs  []*segment // newest first; the slice is replaced, never edited
	live  int        // live string count
	seq   uint64     // WAL sequence of the newest applied mutation
	gen   uint64     // newest allocated segment generation

	closed bool

	alloc       *IDAlloc
	version     atomic.Uint64 // bumped on every effective mutation
	flushes     atomic.Uint64
	compactions atomic.Uint64

	dir string
	wal *wal

	flushLimit  int
	maxSegments int
	hook        func(string) bool

	cmu       sync.Mutex // serializes compactions (manual and background)
	compactCh chan struct{}
	quit      chan struct{}
	wg        sync.WaitGroup
}

// Open creates or recovers a store. With a Dir, existing segment files and
// the WAL are replayed (Seed is ignored when prior state exists) and the
// recovered state is checkpointed into a single fresh segment.
func Open(o Options) (*Store, error) {
	st := &Store{
		dict:        make(map[int32]string),
		index:       make(map[string]int32),
		delta:       newDelta(),
		alloc:       o.Alloc,
		dir:         o.Dir,
		flushLimit:  o.FlushLimit,
		maxSegments: o.MaxSegments,
		hook:        o.CompactHook,
		compactCh:   make(chan struct{}, 1),
		quit:        make(chan struct{}),
	}
	if st.alloc == nil {
		st.alloc = &IDAlloc{}
	}
	if st.flushLimit <= 0 {
		st.flushLimit = defaultFlushLimit
	}
	if st.maxSegments <= 0 {
		st.maxSegments = defaultMaxSegments
	}
	if st.dir == "" {
		if err := st.applySeed(o.Seed); err != nil {
			return nil, err
		}
		st.startCompactor()
		return st, nil
	}
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return nil, err
	}
	files, err := loadSegments(st.dir)
	if err != nil {
		return nil, err
	}
	walRecs, err := readWAL(filepath.Join(st.dir, walName))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 && len(walRecs) == 0 {
		if err := st.applySeed(o.Seed); err != nil {
			return nil, err
		}
		if len(st.segs) > 0 {
			if err := writeSegmentFile(st.dir, st.segs[0]); err != nil {
				return nil, err
			}
		}
	} else if err := st.recover(files, walRecs); err != nil {
		return nil, err
	}
	st.wal, err = openWAL(filepath.Join(st.dir, walName))
	if err != nil {
		return nil, err
	}
	if err := st.wal.reset(); err != nil {
		st.wal.close()
		return nil, err
	}
	st.startCompactor()
	return st, nil
}

// applySeed installs the initial dictionary as one segment.
func (st *Store) applySeed(seed []SeedEntry) error {
	if len(seed) == 0 {
		return nil
	}
	recs := make([]record, 0, len(seed))
	maxID := int32(-1)
	for _, e := range seed {
		if _, dup := st.dict[e.ID]; dup {
			return errors.New("lsm: duplicate seed id")
		}
		if _, dup := st.index[e.S]; dup {
			return errors.New("lsm: duplicate seed string")
		}
		st.dict[e.ID] = e.S
		st.index[e.S] = e.ID
		recs = append(recs, record{id: e.ID, s: e.S, live: true})
		if e.ID > maxID {
			maxID = e.ID
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })
	st.gen = 1
	st.segs = []*segment{newSegment(st.gen, 0, recs)}
	st.live = len(recs)
	st.alloc.Raise(maxID + 1)
	return nil
}

// recover rebuilds state from segment files plus WAL records, then
// checkpoints everything into a single fresh segment file and clears out the
// inputs. WAL records already covered by a segment (seq <= that segment's
// maxSeq) are skipped; replaying a suffix twice is harmless anyway because
// the logged operations are idempotent.
func (st *Store) recover(files []segFile, walRecs []walRec) error {
	state := make(map[int32]record)
	var covered, maxGen uint64
	for _, f := range files {
		for _, r := range f.recs {
			state[r.id] = r
		}
		if f.maxSeq > covered {
			covered = f.maxSeq
		}
		if f.gen > maxGen {
			maxGen = f.gen
		}
	}
	seq := covered
	for _, r := range walRecs {
		if r.seq <= covered {
			continue
		}
		state[r.id] = record{id: r.id, s: r.s, live: r.live}
		if r.seq > seq {
			seq = r.seq
		}
	}
	recs := make([]record, 0, len(state))
	maxID := int32(-1)
	for _, r := range state {
		recs = append(recs, r)
		if r.id > maxID {
			maxID = r.id
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })
	for _, r := range recs {
		st.dict[r.id] = r.s
		st.index[r.s] = r.id
		if r.live {
			st.live++
		}
	}
	st.seq = seq
	st.gen = maxGen + 1
	st.alloc.Raise(maxID + 1)
	ckpt := newSegment(st.gen, st.seq, recs)
	if err := writeSegmentFile(st.dir, ckpt); err != nil {
		return err
	}
	for _, f := range files {
		if f.gen != ckpt.gen {
			os.Remove(f.path)
		}
	}
	st.segs = []*segment{ckpt}
	return nil
}

// startCompactor launches the background merge goroutine.
func (st *Store) startCompactor() {
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		for {
			select {
			case <-st.quit:
				return
			case <-st.compactCh:
				st.Compact()
				// Flushes during the merge may have pushed the count
				// back over the limit; loop until it is not.
				st.mu.RLock()
				again := len(st.segs) > st.maxSegments
				st.mu.RUnlock()
				if again {
					st.requestCompact()
				}
			}
		}
	}()
}

// requestCompact schedules a background compaction; a no-op when one is
// already pending.
func (st *Store) requestCompact() {
	select {
	case st.compactCh <- struct{}{}:
	default:
	}
}

// Close stops the compactor and releases the WAL. The delta is NOT flushed:
// with a Dir every mutation is already durable in the WAL (reopen replays
// it); without one the store's contents are discarded by design.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.mu.Unlock()
	close(st.quit)
	st.wg.Wait()
	if st.wal != nil {
		return st.wal.close()
	}
	return nil
}

// Insert adds s to the live dictionary. It returns the string's id and
// whether the store changed (false when s was already live). A string seen
// before — even one currently deleted — keeps its original id.
func (st *Store) Insert(s string) (int32, bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, false, ErrClosed
	}
	id, known := st.index[s]
	if known && st.isLiveLocked(id) {
		return id, false, nil
	}
	if !known {
		id = st.alloc.alloc()
		st.index[s] = id
		st.dict[id] = s
	}
	st.seq++
	if st.wal != nil {
		//lint:ignore blockunderlock WAL-before-apply durability: the write lock must cover the append so no reader observes unlogged state; cost is one buffered-record write, bounded by walFlushEvery
		if err := st.wal.append(walRec{seq: st.seq, id: id, s: s, live: true}); err != nil {
			st.seq--
			return 0, false, err
		}
	}
	st.delta.setLive(id, int32(len(s)))
	st.live++
	st.version.Add(1)
	if st.delta.size() >= st.flushLimit {
		//lint:ignore blockunderlock the segment file must be written before the WAL is reset and before any reader sees the rotated delta, so the flush stays under the write lock; amortized to every FlushLimit-th write
		if err := st.flushLocked(); err != nil {
			return id, true, err
		}
	}
	return id, true, nil
}

// Delete tombstones s. It returns whether the store changed (false when s
// was not live). The id<->string binding survives for a later re-insert.
func (st *Store) Delete(s string) (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false, ErrClosed
	}
	id, known := st.index[s]
	if !known || !st.isLiveLocked(id) {
		return false, nil
	}
	st.seq++
	if st.wal != nil {
		//lint:ignore blockunderlock WAL-before-apply durability: the write lock must cover the append so no reader observes unlogged state; cost is one buffered-record write, bounded by walFlushEvery
		if err := st.wal.append(walRec{seq: st.seq, id: id, s: s, live: false}); err != nil {
			st.seq--
			return false, err
		}
	}
	st.delta.setDead(id, int32(len(s)))
	st.live--
	st.version.Add(1)
	if st.delta.size() >= st.flushLimit {
		//lint:ignore blockunderlock the segment file must be written before the WAL is reset and before any reader sees the rotated delta, so the flush stays under the write lock; amortized to every FlushLimit-th write
		if err := st.flushLocked(); err != nil {
			return true, err
		}
	}
	return true, nil
}

// isLiveLocked resolves id's liveness newest-wins: delta first, then
// segments newest to oldest. Must be called with st.mu held.
func (st *Store) isLiveLocked(id int32) bool {
	if live, ok := st.delta.ops[id]; ok {
		return live
	}
	for _, seg := range st.segs {
		if live, ok := seg.state[id]; ok {
			return live
		}
	}
	return false
}

// Flush freezes the current delta into a new segment.
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	//lint:ignore blockunderlock an explicit Flush trades one segment write under the lock for the freeze being atomic with respect to concurrent searches; same contract as the size-triggered flush in Insert/Delete
	return st.flushLocked()
}

// flushLocked freezes the delta into a segment (and its file, when
// persistent). The segment file is written before the WAL is reset; a crash
// between the two replays records the segment already covers, which the
// sequence filter (and idempotence) absorbs. Must be called with st.mu held
// for writing.
func (st *Store) flushLocked() error {
	if st.delta.size() == 0 {
		return nil
	}
	recs := make([]record, 0, st.delta.size())
	for id, live := range st.delta.ops {
		recs = append(recs, record{id: id, s: st.dict[id], live: live})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })
	seg := newSegment(st.gen+1, st.seq, recs)
	if st.dir != "" {
		if err := writeSegmentFile(st.dir, seg); err != nil {
			return err
		}
		if err := st.wal.reset(); err != nil {
			return err
		}
	}
	st.gen++
	segs := make([]*segment, 0, len(st.segs)+1)
	segs = append(segs, seg)
	segs = append(segs, st.segs...)
	st.segs = segs
	st.delta = newDelta()
	st.flushes.Add(1)
	if len(st.segs) > st.maxSegments {
		st.requestCompact()
	}
	return nil
}

// hookOK consults the crash-injection hook; true means keep going.
func (st *Store) hookOK(stage string) bool {
	return st.hook == nil || st.hook(stage)
}

// Compact merges every current segment into one newest-wins generation.
// Searches and writes proceed concurrently: the merge works on an immutable
// snapshot, and only the final pointer swap takes the write lock. Flushes
// that land mid-merge simply stay in front of the merged segment (ordering
// is by maxSeq, so recovery agrees). Tombstones are retained so bindings
// survive.
func (st *Store) Compact() error {
	st.cmu.Lock()
	defer st.cmu.Unlock()

	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	inputs := st.segs
	if len(inputs) < 2 {
		st.mu.Unlock()
		return nil
	}
	st.gen++
	gen := st.gen
	st.mu.Unlock()

	merged := mergeSegments(inputs, gen)
	if !st.hookOK("merged") {
		return nil
	}
	if st.dir != "" {
		tmp, err := writeSegmentTmp(st.dir, merged)
		if err != nil {
			return err
		}
		if !st.hookOK("written") {
			return nil
		}
		if err := os.Rename(tmp, segPath(st.dir, merged.gen)); err != nil {
			return err
		}
		if !st.hookOK("renamed") {
			return nil
		}
		for i, in := range inputs {
			os.Remove(segPath(st.dir, in.gen))
			if i == 0 && !st.hookOK("removed-first") {
				return nil
			}
		}
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	// Only flushes touched st.segs since the snapshot, and flushes only
	// prepend: the snapshot is still the suffix. Replace it.
	keep := len(st.segs) - len(inputs)
	if keep < 0 || st.segs[keep] != inputs[0] {
		// Cannot happen with a single serialized compactor; refuse to
		// corrupt state if it somehow does.
		return errors.New("lsm: segment list changed unexpectedly during compaction")
	}
	segs := make([]*segment, 0, keep+1)
	segs = append(segs, st.segs[:keep]...)
	segs = append(segs, merged)
	st.segs = segs
	st.compactions.Add(1)
	return nil
}

// Search implements core.Searcher.
func (st *Store) Search(q core.Query) []core.Match {
	ms, _ := st.SearchContext(context.Background(), q)
	return ms
}

// SearchContext answers q over the live dictionary: the delta and every
// segment are scanned with one compiled pattern, suppression resolves each
// id newest-wins, and the ID-sorted runs are merged. Results are identical
// to a frozen scan over the current live strings (with the dictionary's
// ids). Honors ctx cancellation between strides.
func (st *Store) SearchContext(ctx context.Context, q core.Query) ([]core.Match, error) {
	if q.K < 0 {
		return nil, nil
	}
	var cancel <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cancel = ctx.Done()
	}
	p := edit.CompileMyers(q.Text)

	segs, shadow, out, ok := st.snapshotScan(p, q.K, cancel)
	if !ok {
		return nil, ctx.Err()
	}

	for i, seg := range segs {
		ms, ok := seg.search(p, q.K, cancel)
		if !ok {
			return nil, ctx.Err()
		}
		for _, m := range ms {
			if _, owned := shadow[m.ID]; owned {
				continue
			}
			if shadowedByNewer(segs[:i], m.ID) {
				continue
			}
			out = append(out, m)
		}
	}
	return mergeRuns(out), nil
}

// snapshotScan captures, under one read lock, everything SearchContext needs
// atomically: the segment list, the shadow set of every delta-owned id, and
// the delta scan itself. (A flush moving entries from delta to a new segment
// between those reads would otherwise drop or double-count ids.) The lock is
// defer-released so a panicking comparison kernel cannot leak st.mu and
// wedge every writer behind a dead reader.
func (st *Store) snapshotScan(p *edit.MyersPattern, k int, cancel <-chan struct{}) (segs []*segment, shadow map[int32]struct{}, out []core.Match, ok bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	segs = st.segs
	if n := len(st.delta.ops); n > 0 {
		shadow = make(map[int32]struct{}, n)
		for id := range st.delta.ops {
			shadow[id] = struct{}{}
		}
	}
	out, ok = st.scanDeltaLocked(p, k, cancel)
	return segs, shadow, out, ok
}

// shadowedByNewer reports whether any newer segment covers id (live or
// tombstoned) and therefore owns its newest version.
func shadowedByNewer(newer []*segment, id int32) bool {
	for _, seg := range newer {
		if _, ok := seg.state[id]; ok {
			return true
		}
	}
	return false
}

// Name implements core.Searcher.
func (st *Store) Name() string { return "lsm" }

// Len returns the live string count.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.live
}

// StringAt resolves an id to its bound string. Bindings are permanent, so a
// result id captured before a concurrent delete still resolves.
func (st *Store) StringAt(id int32) (string, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.dict[id]
	return s, ok
}

// Version returns the mutation counter: it advances on every effective
// insert or delete, and is what callers fold into cache version strings.
func (st *Store) Version() uint64 { return st.version.Load() }

// LiveStrings returns the current live dictionary as (ids, strings), both
// ascending by id — the frozen-oracle input used by the test harness.
func (st *Store) LiveStrings() ([]int32, []string) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ids := make([]int32, 0, st.live)
	for id := range st.dict {
		if st.isLiveLocked(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	strs := make([]string, len(ids))
	for i, id := range ids {
		strs[i] = st.dict[id]
	}
	return ids, strs
}

// Stats is a point-in-time snapshot of the store's shape.
type Stats struct {
	Live           int    // live strings
	Known          int    // bindings ever made (live + tombstoned)
	Tombstones     int    // dead bindings
	DeltaEntries   int    // unflushed mutations
	Segments       int    // immutable segments
	SegmentStrings int    // live strings across segments
	ArenaBytes     int    // packed bytes across segment arenas
	Seq            uint64 // newest WAL sequence
	Generation     uint64 // mutation counter (cache version source)
	Flushes        uint64
	Compactions    uint64
	Persistent     bool
}

// Stats returns the current snapshot.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := Stats{
		Live:         st.live,
		Known:        len(st.dict),
		Tombstones:   len(st.dict) - st.live,
		DeltaEntries: st.delta.size(),
		Segments:     len(st.segs),
		Seq:          st.seq,
		Generation:   st.version.Load(),
		Flushes:      st.flushes.Load(),
		Compactions:  st.compactions.Load(),
		Persistent:   st.dir != "",
	}
	for _, seg := range st.segs {
		s.SegmentStrings += len(seg.ids)
		s.ArenaBytes += seg.arena.Bytes()
	}
	return s
}
