package lsm

// Metamorphic property: insert-then-delete-then-reinsert of a string, under
// every placement of flush/compact boundaries around those three ops, must
// leave the store answering exactly like a twin that never touched the
// string — same ids, same distances, same top-k, byte for byte.

import (
	"testing"

	"simsearch/internal/core"
)

func TestInsertDeleteReinsertIsIdentity(t *testing.T) {
	universe := take(t, dedupe(append(cityUniverse(150), dnaUniverse(40, 10)...)), 120)
	seed := universe[:80]

	// The disturbance targets both a seeded string (revival must keep its
	// original low id) and a brand-new one (its fresh id must not leak
	// into results once deleted... and must come back identically when
	// reinserted, since the binding is permanent).
	targets := []string{seed[17], universe[90]}

	queries := []core.Query{
		{Text: seed[17], K: 2},
		{Text: universe[90], K: 2},
		{Text: mutate(seed[17], 2), K: 3},
		{Text: seed[3], K: 1},
		{Text: "", K: 1},
	}

	// barrier op codes: what happens between the three mutation steps.
	type barrier int
	const (
		nothing barrier = iota
		flush
		compact
		flushCompact
	)
	apply := func(t *testing.T, st *Store, b barrier) {
		t.Helper()
		switch b {
		case flush:
			if err := st.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		case compact:
			if err := st.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		case flushCompact:
			if err := st.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if err := st.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		}
	}

	// The untouched twin: seeded, never disturbed.
	calm := mustOpen(t, Options{Seed: seedEntries(seed), FlushLimit: 1 << 20, MaxSegments: 100})
	calmTop := make([][]core.Match, len(queries))
	for qi, q := range queries {
		calmTop[qi] = core.TopK(calm, q.Text, 3, q.K)
	}

	for _, target := range targets {
		for b1 := nothing; b1 <= flushCompact; b1++ {
			for b2 := nothing; b2 <= flushCompact; b2++ {
				for b3 := nothing; b3 <= flushCompact; b3++ {
					st := mustOpen(t, Options{Seed: seedEntries(seed), FlushLimit: 1 << 20, MaxSegments: 100})
					if _, _, err := st.Insert(target); err != nil {
						t.Fatalf("insert: %v", err)
					}
					apply(t, st, b1)
					if _, err := st.Delete(target); err != nil {
						t.Fatalf("delete: %v", err)
					}
					apply(t, st, b2)
					wasSeeded := target == seed[17]
					if wasSeeded {
						// Reinserting restores the seeded state.
						if _, _, err := st.Insert(target); err != nil {
							t.Fatalf("reinsert: %v", err)
						}
					}
					apply(t, st, b3)

					if wasSeeded {
						// Store must now be indistinguishable from calm.
						for qi, q := range queries {
							got, want := st.Search(q), calm.Search(q)
							if !core.Equal(got, want) {
								t.Fatalf("target %q barriers (%d,%d,%d) query %+v: got %v, want %v",
									target, b1, b2, b3, q, got, want)
							}
							gotTop := core.TopK(st, q.Text, 3, q.K)
							if !core.Equal(gotTop, calmTop[qi]) {
								t.Fatalf("target %q barriers (%d,%d,%d) top-k %+v: got %v, want %v",
									target, b1, b2, b3, q, gotTop, calmTop[qi])
							}
						}
					} else {
						// A foreign string inserted then deleted: results
						// must match calm too (the tombstone hides it).
						for _, q := range queries {
							got, want := st.Search(q), calm.Search(q)
							if !core.Equal(got, want) {
								t.Fatalf("target %q barriers (%d,%d,%d) query %+v: got %v, want %v",
									target, b1, b2, b3, q, got, want)
							}
						}
					}
					st.Close()
				}
			}
		}
	}
}
