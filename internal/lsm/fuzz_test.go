package lsm

// FuzzLiveIdentical: random interleavings of insert / delete / search /
// flush / compact (and, for persistent runs, a mid-sequence close + reopen)
// against the pure-Go dictionary model and the rebuild-from-scratch frozen
// oracle. Every search must be byte-identical to a frozen engine over the
// model's live strings; the final dictionary must match the model exactly.

import (
	"strings"
	"testing"

	"simsearch/internal/core"
)

func FuzzLiveIdentical(f *testing.F) {
	// Seeds on both benchmark alphabets: prose-like city names and ACGT
	// reads, plus ops scripts mixing every op code.
	cities := strings.Join(dedupe(cityUniverse(24)), "\n")
	dna := strings.Join(dedupe(dnaUniverse(16, 10)), "\n")
	f.Add([]byte(cities), []byte{0, 1, 2, 3, 10, 4, 0, 9, 1, 2, 5, 0}, uint8(2), false)
	f.Add([]byte(dna), []byte{0, 0, 1, 1, 3, 0, 4, 2, 2, 12, 5, 7}, uint8(1), false)
	f.Add([]byte(cities), []byte{0, 1, 0, 2, 3, 5, 0, 6, 4, 1, 2, 8}, uint8(3), true)
	f.Add([]byte(cities+"\n"+dna), []byte{0, 3, 1, 6, 2, 9, 3, 0, 4, 1, 5, 2, 0, 7, 2, 4}, uint8(2), true)

	f.Fuzz(func(t *testing.T, blob []byte, script []byte, kb uint8, persist bool) {
		universe := strings.Split(string(blob), "\n")
		if len(universe) > 48 {
			universe = universe[:48]
		}
		for _, s := range universe {
			if len(s) > 64 {
				t.Skip("oversized universe string")
			}
		}
		if len(script) > 256 {
			script = script[:256]
		}
		k := int(kb % 5)

		dir := ""
		if persist {
			dir = t.TempDir()
		}
		opts := Options{Dir: dir, FlushLimit: 6, MaxSegments: 3}
		st, err := Open(opts)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer func() { st.Close() }()
		m := newModel(nil)

		reopenAt := -1
		if persist {
			reopenAt = len(script) / 2
		}
		for i := 0; i+1 < len(script); i += 2 {
			if i == reopenAt {
				// Simulated restart mid-sequence: unflushed delta
				// must come back from the WAL.
				if err := st.Close(); err != nil {
					t.Fatalf("mid-sequence Close: %v", err)
				}
				if st, err = Open(opts); err != nil {
					t.Fatalf("mid-sequence reopen: %v", err)
				}
				checkDict(t, st, m)
			}
			op, arg := script[i], int(script[i+1])
			var s string
			if len(universe) > 0 {
				s = universe[arg%len(universe)]
			}
			switch op % 6 {
			case 0:
				id, added, err := st.Insert(s)
				if err != nil {
					t.Fatalf("Insert(%q): %v", s, err)
				}
				prevID, known := m.idOf[s]
				wasLive := known && m.live[prevID]
				m.insert(s)
				if added == wasLive {
					t.Fatalf("Insert(%q): added=%v disagrees with model", s, added)
				}
				if id != m.idOf[s] {
					t.Fatalf("Insert(%q): id %d, model says %d", s, id, m.idOf[s])
				}
			case 1:
				changed, err := st.Delete(s)
				if err != nil {
					t.Fatalf("Delete(%q): %v", s, err)
				}
				id, known := m.idOf[s]
				if changed != (known && m.live[id]) {
					t.Fatalf("Delete(%q): changed=%v disagrees with model", s, changed)
				}
				m.delete(s)
			case 2:
				checkSearch(t, st, m, core.Query{Text: s, K: k})
			case 3:
				if err := st.Flush(); err != nil {
					t.Fatalf("Flush: %v", err)
				}
			case 4:
				if err := st.Compact(); err != nil {
					t.Fatalf("Compact: %v", err)
				}
			case 5:
				checkSearch(t, st, m, core.Query{Text: mutate(s, arg), K: k})
			}
		}

		checkDict(t, st, m)
		for _, s := range universe {
			checkSearch(t, st, m, core.Query{Text: s, K: k})
		}
		if persist {
			// Final restart: the recovered store must answer like the
			// oracle too.
			if err := st.Close(); err != nil {
				t.Fatalf("final Close: %v", err)
			}
			if st, err = Open(opts); err != nil {
				t.Fatalf("final reopen: %v", err)
			}
			checkDict(t, st, m)
			for _, s := range universe {
				checkSearch(t, st, m, core.Query{Text: s, K: k})
			}
		}
	})
}
