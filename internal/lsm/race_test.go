package lsm

// Concurrency suite, meant for -race: searches, writes, flushes, and
// compactions all running against one store. Searches cannot be checked
// against a frozen oracle here (the dictionary moves underneath them), so
// each result is checked for internal consistency instead: strictly
// ascending unique ids, every id resolvable, every distance exact and within
// budget. A separate test pins down that cancelled searches never block the
// compactor.

import (
	"context"
	"sync"
	"testing"

	"simsearch/internal/core"
	"simsearch/internal/edit"
)

// checkInvariants validates one concurrent search result set.
func checkInvariants(t *testing.T, st *Store, q core.Query, ms []core.Match) {
	t.Helper()
	prev := int32(-1)
	for _, m := range ms {
		if m.ID <= prev {
			t.Errorf("query %+v: ids not strictly ascending: %d after %d", q, m.ID, prev)
			return
		}
		prev = m.ID
		s, ok := st.StringAt(m.ID)
		if !ok {
			t.Errorf("query %+v: unresolvable id %d", q, m.ID)
			return
		}
		if m.Dist > q.K {
			t.Errorf("query %+v: distance %d beyond budget", q, m.Dist)
			return
		}
		if d := edit.Distance(q.Text, s); d != m.Dist {
			t.Errorf("query %+v: id %d distance %d, want %d", q, m.ID, m.Dist, d)
			return
		}
	}
}

func TestConcurrentSearchWriteCompact(t *testing.T) {
	universe := take(t, dedupe(append(cityUniverse(400), dnaUniverse(100, 9)...)), 250)
	st := mustOpen(t, Options{
		Seed:        seedEntries(universe[:100]),
		FlushLimit:  16,
		MaxSegments: 2,
	})

	const (
		writers   = 2
		searchers = 3
		iters     = 400
	)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := universe[(i*7+w*131)%len(universe)]
				if i%3 == 0 {
					if _, err := st.Delete(s); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				} else {
					if _, _, err := st.Insert(s); err != nil {
						t.Errorf("Insert: %v", err)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < searchers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := core.Query{Text: universe[(i*13+r*37)%len(universe)], K: 2}
				checkInvariants(t, st, q, st.Search(q))
			}
		}(r)
	}

	// A dedicated caller keeps manual compactions overlapping the
	// background ones the flushes schedule.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			if err := st.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()

	wg.Wait()
}

func TestCancelledSearchNeverBlocksCompactor(t *testing.T) {
	universe := take(t, dedupe(cityUniverse(300)), 150)
	st := mustOpen(t, Options{Seed: seedEntries(universe), FlushLimit: 8, MaxSegments: 2})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the searches even start

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ms, err := st.SearchContext(ctx, core.Query{Text: universe[(i+r)%len(universe)], K: 2})
				if err != context.Canceled {
					t.Errorf("cancelled search: err=%v ms=%v", err, ms)
					return
				}
			}
		}(r)
	}
	// Compactions and writes must make progress while the cancelled
	// searchers churn; the test completing at all is the liveness claim,
	// and every Compact call returning is the blocking claim.
	for i := 0; i < 50; i++ {
		st.Insert(universe[i] + "!")
		if i%5 == 0 {
			if err := st.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if err := st.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		}
	}
	wg.Wait()
}

func TestConcurrentSearchersDuringCompaction(t *testing.T) {
	universe := take(t, dedupe(cityUniverse(400)), 150)
	st := mustOpen(t, Options{FlushLimit: 1 << 20, MaxSegments: 100})
	// Build many segments by hand so every Compact has real work.
	for i, s := range universe {
		st.Insert(s)
		if i%25 == 24 {
			if err := st.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := core.Query{Text: universe[(i*11+r)%len(universe)], K: 2}
				checkInvariants(t, st, q, st.Search(q))
			}
		}(r)
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	close(stop)
	wg.Wait()
	if got := st.Stats().Segments; got != 1 {
		t.Fatalf("segments after compaction: %d, want 1", got)
	}
	// Results after the swap still match a frozen rebuild.
	m := newModel(universe)
	checkAll(t, st, m, universe[:50], 2)
}
