package lsm

// Segment files. Each flush or compaction writes one immutable file holding
// every record (live and dead) of a segment, varint-framed in the style of
// the trie serialization: magic + version, header fields, then records.
// Files are written to a .tmp sibling and renamed into place, so a crash
// mid-write leaves only garbage .tmp files that recovery sweeps away.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// segMagic identifies the segment format; the trailing digit is the version.
var segMagic = []byte("SIMSEG1\n")

// ErrBadSegment reports a file that is not a segment of the supported version.
var ErrBadSegment = errors.New("lsm: bad segment format")

const walName = "wal.log"

// segPath names the segment file for a generation.
func segPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016d.seg", gen))
}

// writeSegmentTmp writes seg to its .tmp sibling and returns the tmp path;
// the caller renames it into place (the compactor keeps the two steps apart
// so the crash hook can fire between them).
func writeSegmentTmp(dir string, seg *segment) (string, error) {
	tmp := segPath(dir, seg.gen) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if _, err := bw.Write(segMagic); err == nil {
		err = put(seg.gen)
		if err == nil {
			err = put(seg.maxSeq)
		}
		recs := seg.records()
		if err == nil {
			err = put(uint64(len(recs)))
		}
		for _, r := range recs {
			if err != nil {
				break
			}
			flag := byte(0)
			if r.live {
				flag = 1
			}
			if err = bw.WriteByte(flag); err != nil {
				break
			}
			if err = put(uint64(uint32(r.id))); err != nil {
				break
			}
			if err = put(uint64(len(r.s))); err != nil {
				break
			}
			_, err = bw.WriteString(r.s)
		}
		if err == nil {
			err = bw.Flush()
		}
		if err == nil {
			err = f.Sync()
		}
	} else {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	return tmp, nil
}

// writeSegmentFile writes seg and renames it into place in one step (the
// flush path, which has no crash hook between write and rename).
func writeSegmentFile(dir string, seg *segment) error {
	tmp, err := writeSegmentTmp(dir, seg)
	if err != nil {
		return err
	}
	return os.Rename(tmp, segPath(dir, seg.gen))
}

// readSegmentFile loads one segment file's header and records (records come
// back sorted by id, as written).
func readSegmentFile(path string) (gen, maxSeq uint64, recs []record, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	if string(head) != string(segMagic) {
		return 0, 0, nil, fmt.Errorf("%w: magic mismatch", ErrBadSegment)
	}
	get := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadSegment, err)
		}
		return v, nil
	}
	if gen, err = get(); err != nil {
		return 0, 0, nil, err
	}
	if maxSeq, err = get(); err != nil {
		return 0, 0, nil, err
	}
	count, err := get()
	if err != nil {
		return 0, 0, nil, err
	}
	if count > 1<<31 {
		return 0, 0, nil, fmt.Errorf("%w: absurd record count %d", ErrBadSegment, count)
	}
	recs = make([]record, 0, count)
	prev := int32(-1)
	for i := uint64(0); i < count; i++ {
		flag, err := br.ReadByte()
		if err != nil {
			return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
		}
		if flag > 1 {
			return 0, 0, nil, fmt.Errorf("%w: bad record flag %d", ErrBadSegment, flag)
		}
		idv, err := get()
		if err != nil {
			return 0, 0, nil, err
		}
		if idv > 1<<31 {
			return 0, 0, nil, fmt.Errorf("%w: absurd id %d", ErrBadSegment, idv)
		}
		id := int32(uint32(idv))
		if id <= prev {
			return 0, 0, nil, fmt.Errorf("%w: records out of id order", ErrBadSegment)
		}
		prev = id
		n, err := get()
		if err != nil {
			return 0, 0, nil, err
		}
		if n > 1<<20 {
			return 0, 0, nil, fmt.Errorf("%w: absurd string length %d", ErrBadSegment, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
		}
		recs = append(recs, record{id: id, s: string(buf), live: flag == 1})
	}
	return gen, maxSeq, recs, nil
}

// segFile is one on-disk segment discovered during recovery.
type segFile struct {
	path   string
	gen    uint64
	maxSeq uint64
	recs   []record
}

// loadSegments sweeps .tmp leftovers, loads every segment file in dir, and
// returns them ordered oldest first by (maxSeq, gen) — the apply order for
// newest-wins recovery.
func loadSegments(dir string) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []segFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		path := filepath.Join(dir, name)
		gen, maxSeq, recs, err := readSegmentFile(path)
		if err != nil {
			return nil, fmt.Errorf("lsm: loading %s: %w", name, err)
		}
		files = append(files, segFile{path: path, gen: gen, maxSeq: maxSeq, recs: recs})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].maxSeq != files[j].maxSeq {
			return files[i].maxSeq < files[j].maxSeq
		}
		return files[i].gen < files[j].gen
	})
	return files, nil
}
