package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simsearch/internal/edit"
)

func hammingRef(data []string, q string, k int) []Match {
	var out []Match
	for i, s := range data {
		if d := edit.HammingDistance(q, s); d >= 0 && d <= k {
			out = append(out, Match{ID: int32(i), Dist: d})
		}
	}
	return out
}

func TestSearchHammingBasic(t *testing.T) {
	data := []string{"ACGT", "ACGA", "TCGT", "ACG", "ACGTT", ""}
	for _, compress := range []bool{false, true} {
		tr := Build(data)
		if compress {
			tr.Compress()
		}
		for _, q := range []string{"ACGT", "ACGA", "", "TTTT"} {
			for k := 0; k <= 2; k++ {
				got := tr.SearchHamming(q, k)
				want := hammingRef(data, q, k)
				if !equalMatches(got, want) {
					t.Errorf("compress=%v SearchHamming(%q, %d) = %v, want %v",
						compress, q, k, got, want)
				}
			}
		}
	}
}

func TestSearchHammingNegativeK(t *testing.T) {
	tr := Build([]string{"a"})
	if got := tr.SearchHamming("a", -1); got != nil {
		t.Errorf("k=-1: %v", got)
	}
}

func TestSearchHammingLengthExactness(t *testing.T) {
	// Strings of other lengths never match, however small the query is.
	tr := Build([]string{"abc", "abcd", "ab"})
	got := tr.SearchHamming("abc", 3)
	if len(got) != 1 || got[0].ID != 0 {
		t.Errorf("got %v", got)
	}
}

func TestQuickSearchHammingAgrees(t *testing.T) {
	for _, compress := range []bool{false, true} {
		compress := compress
		fn := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			n := 1 + r.Intn(60)
			data := make([]string, n)
			for i := range data {
				data[i] = randomString(r, "ACGT", 10)
			}
			tr := Build(data)
			if compress {
				tr.Compress()
			}
			q := randomString(r, "ACGT", 10)
			k := r.Intn(5)
			return equalMatches(tr.SearchHamming(q, k), hammingRef(data, q, k))
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("compress=%v: %v", compress, err)
		}
	}
}
