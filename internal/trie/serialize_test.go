package trie

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"simsearch/internal/filter"
)

func roundTrip(t *testing.T, tr *Tree) *Tree {
	t.Helper()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestSerializeRoundTrip(t *testing.T) {
	data := []string{"berlin", "bern", "bonn", "ulm", "", "berlin"}
	for _, compress := range []bool{false, true} {
		for _, modern := range []bool{false, true} {
			for _, withFreq := range []bool{false, true} {
				var opts []Option
				if modern {
					opts = append(opts, WithModernPruning())
				}
				if withFreq {
					opts = append(opts, WithFrequency(filter.VowelFrequency()))
				}
				tr := Build(data, opts...)
				if compress {
					tr.Compress()
				}
				got := roundTrip(t, tr)
				if got.Compressed() != compress || got.Modern() != modern {
					t.Errorf("flags lost: compressed=%v modern=%v", got.Compressed(), got.Modern())
				}
				if got.Len() != tr.Len() || got.NodeCount() != tr.NodeCount() {
					t.Errorf("counts lost: %d/%d vs %d/%d",
						got.Len(), got.NodeCount(), tr.Len(), tr.NodeCount())
				}
				for _, q := range []string{"berlin", "bern", "x", "", "bonnn"} {
					for k := 0; k <= 2; k++ {
						if !equalMatches(got.Search(q, k), tr.Search(q, k)) {
							t.Errorf("search diverges after round trip (%q, %d)", q, k)
						}
					}
				}
			}
		}
	}
}

func TestSerializeEmptyTree(t *testing.T) {
	tr := New()
	got := roundTrip(t, tr)
	if got.Len() != 0 {
		t.Errorf("Len = %d", got.Len())
	}
	if ms := got.Search("anything", 2); len(ms) != 0 {
		t.Errorf("matches in empty tree: %v", ms)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC....."),
		[]byte("SIMTRIE1"), // truncated after magic
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("Read(%q) error = %v, want ErrBadFormat", c, err)
		}
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	tr := Build([]string{"berlin", "bern", "ulm"})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	tr := Build([]string{"berlin", "bern", "ulm", "aachen"})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r := rand.New(rand.NewSource(5))
	rejected := 0
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), full...)
		pos := len(magic) + r.Intn(len(corrupt)-len(magic))
		corrupt[pos] ^= byte(1 + r.Intn(255))
		if _, err := Read(bytes.NewReader(corrupt)); err != nil {
			rejected++
		}
		// Flips that survive structural validation are acceptable (they
		// alter ids or lengths, not framing); we only require that the
		// reader never panics and detects most framing damage.
	}
	if rejected == 0 {
		t.Error("no corruption ever detected")
	}
}

func TestQuickSerializePreservesSearch(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		data := make([]string, n)
		for i := range data {
			data[i] = randomString(r, "abAB", 8)
		}
		tr := Build(data)
		if r.Intn(2) == 0 {
			tr.Compress()
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		q := randomString(r, "abAB", 8)
		k := r.Intn(4)
		return equalMatches(got.Search(q, k), tr.Search(q, k))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
