package trie

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemArena(t *testing.T) {
	var a MemArena
	off1, err := a.Append([]byte("hello"))
	if err != nil || off1 != 0 {
		t.Fatalf("Append: %d, %v", off1, err)
	}
	off2, _ := a.Append([]byte("world"))
	if off2 != 5 {
		t.Errorf("off2 = %d", off2)
	}
	b, err := a.Bytes(5, 5)
	if err != nil || string(b) != "world" {
		t.Errorf("Bytes = %q, %v", b, err)
	}
	if _, err := a.Bytes(8, 5); err == nil {
		t.Error("out-of-bounds read accepted")
	}
	if a.Size() != 10 {
		t.Errorf("Size = %d", a.Size())
	}
}

func TestFileArena(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.bin")
	a, err := NewFileArena(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	off, err := a.Append([]byte("ACGTACGT"))
	if err != nil || off != 0 {
		t.Fatalf("Append: %v", err)
	}
	off2, _ := a.Append([]byte("TTTT"))
	if off2 != 8 || a.Size() != 12 {
		t.Errorf("off2=%d size=%d", off2, a.Size())
	}
	b, err := a.Bytes(8, 4)
	if err != nil || string(b) != "TTTT" {
		t.Errorf("Bytes = %q, %v", b, err)
	}
	b, err = a.Bytes(0, 8)
	if err != nil || string(b) != "ACGTACGT" {
		t.Errorf("Bytes = %q, %v", b, err)
	}
}

func TestBuildExternalValidation(t *testing.T) {
	if _, err := BuildExternal([]string{"x"}, 0, nil); err == nil {
		t.Error("cutDepth 0 accepted")
	}
}

func TestExternalMatchesInMemory(t *testing.T) {
	data := []string{
		"berlin", "bern", "bonn", "magdeburg", "ulm", "",
		"a", "magdeburgerstrasse", "magdalena",
	}
	ref := Build(data, WithModernPruning())
	ref.Compress()
	for _, cut := range []int{1, 2, 4, 8, 100} {
		ext, err := BuildExternal(data, cut, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ext.Len() != len(data) {
			t.Errorf("cut=%d Len=%d", cut, ext.Len())
		}
		for _, q := range []string{"berlin", "magdeburg", "magdeburk", "x", ""} {
			for k := 0; k <= 3; k++ {
				got, err := ext.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want := ref.Search(q, k)
				if !equalMatches(got, want) {
					t.Errorf("cut=%d Search(%q,%d) = %v, want %v", cut, q, k, got, want)
				}
			}
		}
	}
}

func TestExternalWithFileArena(t *testing.T) {
	data := []string{"magdeburg", "magdalena", "berlin", "bern"}
	path := filepath.Join(t.TempDir(), "suffixes.bin")
	arena, err := NewFileArena(path)
	if err != nil {
		t.Fatal(err)
	}
	defer arena.Close()
	ext, err := BuildExternal(data, 3, arena)
	if err != nil {
		t.Fatal(err)
	}
	ref := Build(data)
	for k := 0; k <= 2; k++ {
		got, err := ext.Search("magdeburk", k)
		if err != nil {
			t.Fatal(err)
		}
		if !equalMatches(got, ref.Search("magdeburk", k)) {
			t.Errorf("k=%d mismatch", k)
		}
	}
	if arena.Size() == 0 {
		t.Error("no suffixes externalized")
	}
}

func TestExternalBoundsNodeCount(t *testing.T) {
	// The in-memory node count must be bounded by the prefix space, far
	// below what the full tree needs on long unique strings.
	r := rand.New(rand.NewSource(17))
	data := make([]string, 500)
	for i := range data {
		data[i] = randomString(r, "ACGT", 100)
		for len(data[i]) < 60 {
			data[i] = randomString(r, "ACGT", 100)
		}
	}
	full := Build(data)
	ext, err := BuildExternal(data, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ext.NodeCount() >= full.NodeCount()/3 {
		t.Errorf("external tree not smaller: %d vs full %d", ext.NodeCount(), full.NodeCount())
	}
}

func TestExternalResidentLabelBytes(t *testing.T) {
	data := []string{"abcdefghij", "abcdexxxxx"}
	ext, err := BuildExternal(data, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only the 3-byte prefixes live in the tree: "abc" shared = 3 bytes.
	if got := ext.ResidentLabelBytes(); got != 3 {
		t.Errorf("ResidentLabelBytes = %d, want 3", got)
	}
}

func TestExternalNegativeK(t *testing.T) {
	ext, err := BuildExternal([]string{"abc"}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ext.Search("abc", -1)
	if err != nil || got != nil {
		t.Errorf("k=-1: %v, %v", got, err)
	}
}

func TestQuickExternalAgreesWithScan(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		data := make([]string, n)
		for i := range data {
			data[i] = randomString(r, "ACGNT", 20)
		}
		cut := 1 + r.Intn(10)
		ext, err := BuildExternal(data, cut, nil)
		if err != nil {
			return false
		}
		q := randomString(r, "ACGNT", 20)
		k := r.Intn(5)
		got, err := ext.Search(q, k)
		if err != nil {
			return false
		}
		return equalMatches(got, scanRef(data, q, k))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
