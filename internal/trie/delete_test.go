package trie

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeleteBasic(t *testing.T) {
	data := []string{"berlin", "bern", "ulm"}
	tr := Build(data)
	if !tr.Contains("bern", 1) {
		t.Fatal("Contains(bern, 1) = false before delete")
	}
	if !tr.Delete("bern", 1) {
		t.Fatal("Delete(bern, 1) = false")
	}
	if tr.Contains("bern", 1) {
		t.Error("bern still present after delete")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if got := tr.Search("bern", 0); len(got) != 0 {
		t.Errorf("Search found deleted string: %v", got)
	}
	// Other strings unaffected.
	if got := tr.Search("berlin", 0); len(got) != 1 || got[0].ID != 0 {
		t.Errorf("berlin lost: %v", got)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := Build([]string{"abc"})
	if tr.Delete("abd", 0) {
		t.Error("deleted a string that was never inserted")
	}
	if tr.Delete("abc", 99) {
		t.Error("deleted a wrong-ID pair")
	}
	if tr.Delete("ab", 0) {
		t.Error("deleted a proper prefix")
	}
	if tr.Delete("abcd", 0) {
		t.Error("deleted an extension")
	}
	if tr.Len() != 1 {
		t.Errorf("Len changed: %d", tr.Len())
	}
}

func TestDeletePrunesNodes(t *testing.T) {
	tr := Build([]string{"abc", "abd"})
	before := tr.NodeCount() // root + a + b + c + d = 5
	if !tr.Delete("abc", 0) {
		t.Fatal("delete failed")
	}
	if tr.NodeCount() != before-1 {
		t.Errorf("NodeCount = %d, want %d", tr.NodeCount(), before-1)
	}
	// Deleting the last string under a chain prunes the whole chain.
	if !tr.Delete("abd", 1) {
		t.Fatal("delete failed")
	}
	if tr.NodeCount() != 1 {
		t.Errorf("NodeCount = %d, want 1 (root only)", tr.NodeCount())
	}
}

func TestDeleteSharedPrefixKeepsBranch(t *testing.T) {
	tr := Build([]string{"ab", "abc"})
	if !tr.Delete("abc", 1) {
		t.Fatal("delete failed")
	}
	if !tr.Contains("ab", 0) {
		t.Error("shorter string lost")
	}
	// Deleting the terminal in the middle keeps the longer string.
	tr = Build([]string{"ab", "abc"})
	if !tr.Delete("ab", 0) {
		t.Fatal("delete failed")
	}
	if !tr.Contains("abc", 1) {
		t.Error("longer string lost")
	}
}

func TestDeleteOnCompressedTree(t *testing.T) {
	tr := Build([]string{"berlin", "bern", "ulm"})
	tr.Compress()
	nodes := tr.NodeCount()
	if !tr.Delete("ulm", 2) {
		t.Fatal("delete on compressed tree failed")
	}
	if tr.Contains("ulm", 2) {
		t.Error("ulm still present")
	}
	if tr.NodeCount() != nodes {
		t.Error("compressed tree structure changed")
	}
	if got := tr.Search("ulm", 0); len(got) != 0 {
		t.Errorf("Search found deleted string: %v", got)
	}
}

func TestDeleteEmptyString(t *testing.T) {
	tr := Build([]string{"", "a"})
	if !tr.Delete("", 0) {
		t.Fatal("delete of empty string failed")
	}
	if got := tr.Search("", 0); len(got) != 0 {
		t.Errorf("empty string still found: %v", got)
	}
}

func TestQuickDeleteThenSearchConsistent(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		data := make([]string, n)
		for i := range data {
			data[i] = randomString(r, "ab", 6)
		}
		tr := Build(data)
		// Delete a random half.
		deleted := map[int32]bool{}
		for i := 0; i < n/2; i++ {
			id := int32(r.Intn(n))
			if deleted[id] {
				continue
			}
			if !tr.Delete(data[id], id) {
				return false
			}
			deleted[id] = true
		}
		// Remaining strings must be exactly the non-deleted ones.
		var remaining []string
		idOf := map[int32]string{}
		for i, s := range data {
			if !deleted[int32(i)] {
				remaining = append(remaining, s)
				idOf[int32(i)] = s
			}
		}
		q := randomString(r, "ab", 6)
		k := r.Intn(3)
		got := tr.Search(q, k)
		for _, m := range got {
			if deleted[m.ID] {
				return false // deleted string surfaced
			}
		}
		want := 0
		for i, s := range data {
			if !deleted[int32(i)] && withinRef(q, s, k) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func withinRef(a, b string, k int) bool {
	return distRefLocal(a, b) <= k
}

func distRefLocal(a, b string) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	curr := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		curr[0] = i
		for j := 1; j <= lb; j++ {
			if a[i-1] == b[j-1] {
				curr[j] = prev[j-1]
			} else {
				v := prev[j]
				if curr[j-1] < v {
					v = curr[j-1]
				}
				if prev[j-1] < v {
					v = prev[j-1]
				}
				curr[j] = v + 1
			}
		}
		prev, curr = curr, prev
	}
	return prev[lb]
}
