package trie

// External-suffix tree: the PETER design from the paper's §2.3 related work
// (Rheinländer et al.). A plain prefix tree over long strings spends most of
// its nodes on unique tails that never branch. PETER therefore keeps only a
// shallow tree in memory and stores long suffixes out of the tree — in a
// file — so the hot structure stays cache- and RAM-resident.
//
// ExternalTree builds the prefix tree over the first CutDepth bytes of every
// string; the remaining tail goes into an Arena (in-memory or file-backed).
// Search descends the tree with banded DP rows exactly like the modern Tree
// and, at each terminal entry, continues the same row over the tail bytes
// fetched from the arena, aborting as soon as the row minimum exceeds k.
// Results are identical to the in-memory tree on the same data.

import (
	"fmt"
	"io"
	"os"

	"simsearch/internal/edit"
)

// Arena stores suffix bytes out of the tree.
type Arena interface {
	// Append stores b and returns its offset.
	Append(b []byte) (int64, error)
	// Bytes returns the n bytes at offset off. The returned slice is only
	// valid until the next call.
	Bytes(off int64, n int) ([]byte, error)
}

// MemArena is an in-memory arena (the degenerate case, useful for tests and
// when the "file" should live on a ramdisk).
type MemArena struct {
	buf []byte
}

// Append implements Arena.
func (m *MemArena) Append(b []byte) (int64, error) {
	off := int64(len(m.buf))
	m.buf = append(m.buf, b...)
	return off, nil
}

// Bytes implements Arena.
func (m *MemArena) Bytes(off int64, n int) ([]byte, error) {
	if off < 0 || off+int64(n) > int64(len(m.buf)) {
		return nil, fmt.Errorf("trie: arena read [%d, %d) out of bounds %d", off, off+int64(n), len(m.buf))
	}
	return m.buf[off : off+int64(n)], nil
}

// Size returns the stored byte count.
func (m *MemArena) Size() int { return len(m.buf) }

// FileArena stores suffixes in a file, reading them back with ReadAt
// through a reusable buffer. It is what PETER does to keep the tree in main
// memory while the corpus exceeds it.
type FileArena struct {
	f    *os.File
	size int64
	buf  []byte
}

// NewFileArena creates (truncates) the arena file.
func NewFileArena(path string) (*FileArena, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileArena{f: f}, nil
}

// Append implements Arena.
func (a *FileArena) Append(b []byte) (int64, error) {
	off := a.size
	if _, err := a.f.WriteAt(b, off); err != nil {
		return 0, err
	}
	a.size += int64(len(b))
	return off, nil
}

// Bytes implements Arena.
func (a *FileArena) Bytes(off int64, n int) ([]byte, error) {
	if cap(a.buf) < n {
		a.buf = make([]byte, n)
	}
	buf := a.buf[:n]
	if _, err := a.f.ReadAt(buf, off); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// Size returns the stored byte count.
func (a *FileArena) Size() int64 { return a.size }

// Close closes the underlying file.
func (a *FileArena) Close() error { return a.f.Close() }

// tail is one externalized suffix hanging off a tree node.
type tail struct {
	id  int32
	off int64
	n   int32
}

// ExternalTree is the PETER-style index: a shallow in-memory tree plus an
// arena of suffixes.
type ExternalTree struct {
	tree     *Tree // modern-pruning tree over the prefixes
	arena    Arena
	cutDepth int
	tails    map[*node][]tail // suffixes per cut node
	strCount int
}

// BuildExternal builds the index over data, cutting every string after
// cutDepth bytes (cutDepth >= 1). Strings shorter than cutDepth live
// entirely in the tree.
func BuildExternal(data []string, cutDepth int, arena Arena) (*ExternalTree, error) {
	if cutDepth < 1 {
		return nil, fmt.Errorf("trie: cutDepth %d < 1", cutDepth)
	}
	if arena == nil {
		arena = &MemArena{}
	}
	e := &ExternalTree{
		tree:     New(WithModernPruning()),
		arena:    arena,
		cutDepth: cutDepth,
		tails:    make(map[*node][]tail),
	}
	for i, s := range data {
		if err := e.insert(s, int32(i)); err != nil {
			return nil, err
		}
	}
	// The tree stays uncompressed: path compression would merge away the
	// nodes the tails hang off, and the whole structure is already bounded
	// by cutDepth — which is the design's memory argument.
	return e, nil
}

func (e *ExternalTree) insert(s string, id int32) error {
	e.strCount++
	if len(s) <= e.cutDepth {
		e.tree.Insert(s, id)
		return nil
	}
	prefix, suffix := s[:e.cutDepth], s[e.cutDepth:]
	// Walk/extend the tree manually so we can attach the tail to the node.
	n := e.tree.root
	e.tree.absorb(n, len(s), nil)
	for i := 0; i < len(prefix); i++ {
		c := prefix[i]
		child := findChild(n, c)
		if child == nil {
			child = &node{label: []byte{c}, minLen: 1<<31 - 1}
			insertChild(n, child)
			e.tree.nodeCount++
		}
		n = child
		e.tree.absorb(n, len(s), nil)
	}
	off, err := e.arena.Append([]byte(suffix))
	if err != nil {
		return err
	}
	e.tails[n] = append(e.tails[n], tail{id: id, off: off, n: int32(len(suffix))})
	return nil
}

// Len returns the number of indexed strings.
func (e *ExternalTree) Len() int { return e.strCount }

// NodeCount returns the in-memory node count.
func (e *ExternalTree) NodeCount() int { return e.tree.nodeCount }

// ResidentLabelBytes returns the label bytes held in memory — the design's
// point of comparison: the full tree keeps every suffix byte resident, the
// external tree only the first cutDepth bytes of each string.
func (e *ExternalTree) ResidentLabelBytes() int { return e.tree.Stats().LabelBytes }

// Search returns every string within edit distance k of q.
func (e *ExternalTree) Search(q string, k int) ([]Match, error) {
	if k < 0 {
		return nil, nil
	}
	var out []Match
	var firstErr error
	s := &searcher{t: e.tree, q: q, k: k}
	s.fn = func(id int32, dist int) {
		out = append(out, Match{ID: id, Dist: dist})
	}
	// Root terminal (empty string).
	if len(e.tree.root.ids) > 0 && len(q) <= k {
		for _, id := range e.tree.root.ids {
			s.fn(id, len(q))
		}
	}
	row := edit.InitialBandRow(q, k, nil)
	var descend func(n *node, parentRow []int, depth int)
	descend = func(n *node, parentRow []int, depth int) {
		if firstErr != nil || s.prune(n) {
			return
		}
		r := parentRow
		d := depth
		for _, c := range n.label {
			next, minV := edit.StepBandRow(q, r, c, d+1, k, s.rowAt(d+1))
			r = next
			d++
			if minV > k {
				return
			}
		}
		if len(n.ids) > 0 {
			if dist, ok := edit.BandRowDistance(r, d, len(q), k); ok {
				for _, id := range n.ids {
					s.fn(id, dist)
				}
			}
		}
		// Continue each externalized tail from the current row.
		for _, tl := range e.tails[n] {
			suffix, err := e.arena.Bytes(tl.off, int(tl.n))
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			tr := r
			td := d
			alive := true
			for _, c := range suffix {
				next, minV := edit.StepBandRow(q, tr, c, td+1, k, s.rowAt(td+1))
				tr = next
				td++
				if minV > k {
					alive = false
					break
				}
			}
			if alive {
				if dist, ok := edit.BandRowDistance(tr, td, len(q), k); ok {
					s.fn(tl.id, dist)
				}
			}
		}
		for _, c := range n.children {
			descend(c, r, d)
		}
	}
	for _, c := range e.tree.root.children {
		descend(c, row, 0)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
