package trie

import (
	"bytes"
	"testing"
)

// FuzzReadNeverPanics feeds arbitrary bytes to the index deserializer; it
// must reject or accept, never crash or hang.
func FuzzReadNeverPanics(f *testing.F) {
	tr := Build([]string{"berlin", "bern", "ulm"})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SIMTRIE1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever was accepted must behave like a tree.
		got.Search("berlin", 2)
		got.Stats()
	})
}
