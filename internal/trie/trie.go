// Package trie implements the paper's index-based engine: a prefix tree over
// the data strings with per-node pruning information, optional path
// compression (paper §4.2, Figure 4), and fuzzy search by dynamic-programming
// row descent (paper §4.1).
//
// Each node stores the minimal and maximal length of the strings reachable
// below it, following Rheinländer et al.'s PETER index as cited in §2.3 and
// adopted in §4.1: a branch whose length window cannot intersect
// [len(q)-k, len(q)+k] is skipped (this realizes the paper's d_m tolerance,
// eq. 9–10). In addition the DP-row minimum prunes branches whose prefix
// already guarantees a distance above k, and optional per-node frequency
// vector bounds (§6 "Frequency vectors") prune on symbol counts.
package trie

import (
	"sort"

	"simsearch/internal/edit"
	"simsearch/internal/filter"
)

// Match is one search result: the ID the string was inserted with and its
// exact edit distance to the query.
type Match struct {
	ID   int32
	Dist int
}

// node is a prefix-tree node. In the uncompressed tree every node's label is
// a single byte; after Compress, chains of single-child non-terminal nodes
// are merged and labels grow to multi-byte edge fragments.
type node struct {
	label    []byte
	children []*node
	ids      []int32 // string IDs terminating here (duplicates share a node)
	minLen   int32   // minimal length of any string below (inclusive of this node)
	maxLen   int32   // maximal length
	// freqLo/freqHi bound the tracked-symbol counts of every string below.
	freqLo []int16
	freqHi []int16
}

// Tree is a prefix-tree index over a set of strings.
type Tree struct {
	root       *node
	nodeCount  int
	strCount   int
	compressed bool
	modern     bool
	freq       *filter.Frequency
}

// Option configures tree construction.
type Option func(*Tree)

// WithFrequency attaches per-node frequency-vector bounds using the given
// tracked alphabet, enabling the §6 frequency-vector pruning during search.
func WithFrequency(f *filter.Frequency) Option {
	return func(t *Tree) { t.freq = f }
}

// WithModernPruning replaces the paper's §4.1 pruning rule (full DP rows
// with the diagonal-plus-d_m test, eq. 9–10) by banded rows with row-minimum
// pruning — the technique modern trie-based similarity indexes use. Results
// are identical; only the amount of work pruned differs. The reproduction's
// ablation benchmarks quantify the gap.
func WithModernPruning() Option {
	return func(t *Tree) { t.modern = true }
}

// New returns an empty tree.
func New(opts ...Option) *Tree {
	t := &Tree{root: &node{minLen: 1<<31 - 1}}
	t.nodeCount = 1
	for _, o := range opts {
		o(t)
	}
	return t
}

// Build constructs a tree over data; string i is inserted with ID i.
func Build(data []string, opts ...Option) *Tree {
	t := New(opts...)
	for i, s := range data {
		t.Insert(s, int32(i))
	}
	return t
}

// Insert adds s with the given ID. Inserting into a compressed tree is not
// supported and panics; build fully, then compress.
func (t *Tree) Insert(s string, id int32) {
	if t.compressed {
		panic("trie: Insert after Compress")
	}
	var vec filter.Vector
	if t.freq != nil {
		vec = t.freq.VectorOf(s)
	}
	n := t.root
	t.absorb(n, len(s), vec)
	for i := 0; i < len(s); i++ {
		c := s[i]
		child := findChild(n, c)
		if child == nil {
			child = &node{label: []byte{c}, minLen: 1<<31 - 1}
			insertChild(n, child)
			t.nodeCount++
		}
		n = child
		t.absorb(n, len(s), vec)
	}
	n.ids = append(n.ids, id)
	t.strCount++
}

// absorb folds one string's length and frequency vector into a node's
// pruning bounds.
func (t *Tree) absorb(n *node, slen int, vec filter.Vector) {
	if int32(slen) < n.minLen {
		n.minLen = int32(slen)
	}
	if int32(slen) > n.maxLen {
		n.maxLen = int32(slen)
	}
	if t.freq == nil {
		return
	}
	if n.freqLo == nil {
		n.freqLo = make([]int16, len(vec))
		n.freqHi = make([]int16, len(vec))
		for i, v := range vec {
			n.freqLo[i] = int16(v)
			n.freqHi[i] = int16(v)
		}
		return
	}
	for i, v := range vec {
		if int16(v) < n.freqLo[i] {
			n.freqLo[i] = int16(v)
		}
		if int16(v) > n.freqHi[i] {
			n.freqHi[i] = int16(v)
		}
	}
}

func findChild(n *node, c byte) *node {
	// children are sorted by first label byte.
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.children[mid].label[0] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.children) && n.children[lo].label[0] == c {
		return n.children[lo]
	}
	return nil
}

func insertChild(n *node, child *node) {
	c := child.label[0]
	idx := sort.Search(len(n.children), func(i int) bool {
		return n.children[i].label[0] >= c
	})
	n.children = append(n.children, nil)
	copy(n.children[idx+1:], n.children[idx:])
	n.children[idx] = child
}

// Compress merges every chain of single-child, non-terminal nodes into one
// node with a multi-byte label (paper §4.2, Figure 4). It reduces the node
// count and the number of per-node bookkeeping steps during search.
func (t *Tree) Compress() {
	if t.compressed {
		return
	}
	var walk func(n *node)
	walk = func(n *node) {
		for i, c := range n.children {
			for len(c.children) == 1 && len(c.ids) == 0 {
				only := c.children[0]
				merged := &node{
					label:    append(append([]byte(nil), c.label...), only.label...),
					children: only.children,
					ids:      only.ids,
					minLen:   only.minLen,
					maxLen:   only.maxLen,
					freqLo:   only.freqLo,
					freqHi:   only.freqHi,
				}
				n.children[i] = merged
				c = merged
				t.nodeCount--
			}
			walk(c)
		}
	}
	walk(t.root)
	t.compressed = true
}

// Compressed reports whether Compress has been applied.
func (t *Tree) Compressed() bool { return t.compressed }

// Modern reports whether WithModernPruning was selected.
func (t *Tree) Modern() bool { return t.modern }

// NodeCount returns the number of nodes including the root. The paper's
// Figure 4 compression claim ("half of the nodes") is checked against this.
func (t *Tree) NodeCount() int { return t.nodeCount }

// Len returns the number of inserted strings.
func (t *Tree) Len() int { return t.strCount }

// Stats summarizes structural properties for the experiment reports.
type Stats struct {
	Nodes      int
	Strings    int
	Compressed bool
	MaxDepth   int // depth in label bytes
	LabelBytes int // resident label bytes (the tree's dominant memory term)
}

// Stats computes structural statistics.
func (t *Tree) Stats() Stats {
	s := Stats{Nodes: t.nodeCount, Strings: t.strCount, Compressed: t.compressed}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		for _, c := range n.children {
			s.LabelBytes += len(c.label)
			walk(c, depth+len(c.label))
		}
	}
	walk(t.root, 0)
	return s
}

// Search returns every inserted string within edit distance k of q, with its
// exact distance. Results are in no particular order; callers sort.
func (t *Tree) Search(q string, k int) []Match {
	var out []Match
	t.SearchFunc(q, k, func(id int32, dist int) {
		out = append(out, Match{ID: id, Dist: dist})
	})
	return out
}

// SearchFunc streams every match to fn. It allocates one DP row per depth
// level on first use and reuses them across the whole traversal, so a search
// costs O(activeNodes × len(q)) time with O(maxDepth × len(q)) memory.
func (t *Tree) SearchFunc(q string, k int, fn func(id int32, dist int)) {
	if k < 0 {
		return
	}
	var vq filter.Vector
	if t.freq != nil {
		vq = t.freq.VectorOf(q)
	}
	s := searcher{t: t, q: q, k: k, fn: fn, vq: vq}
	// The root may itself be terminal for the empty string.
	if len(t.root.ids) > 0 && len(q) <= k {
		for _, id := range t.root.ids {
			fn(id, len(q))
		}
	}
	if t.modern {
		row := edit.InitialBandRow(q, k, nil)
		for _, c := range t.root.children {
			s.descend(c, row, 0)
		}
		return
	}
	row := edit.InitialRow(q)
	for _, c := range t.root.children {
		s.descendPaper(c, row, 0)
	}
}

type searcher struct {
	t    *Tree
	q    string
	k    int
	fn   func(id int32, dist int)
	vq   filter.Vector
	rows [][]int // row buffer per byte depth, lazily grown
}

// prune reports whether the subtree below n can be skipped outright based on
// the stored length window and frequency bounds.
func (s *searcher) prune(n *node) bool {
	// Length-window pruning (the paper's d_m tolerance, eq. 9–10): every
	// string below n has length in [minLen, maxLen]; it can only match if
	// that window intersects [len(q)-k, len(q)+k].
	if int(n.minLen) > len(s.q)+s.k || int(n.maxLen) < len(s.q)-s.k {
		return true
	}
	if s.vq != nil && n.freqLo != nil {
		// Frequency bounds: the one-sided surpluses against the best case.
		var over, under int
		for i, qv := range s.vq {
			if d := qv - int(n.freqHi[i]); d > 0 {
				over += d
			}
			if d := int(n.freqLo[i]) - qv; d > 0 {
				under += d
			}
		}
		m := over
		if under > m {
			m = under
		}
		if m > s.k {
			return true
		}
	}
	return false
}

// rowAt returns the reusable row buffer for a byte depth.
func (s *searcher) rowAt(depth int) []int {
	for len(s.rows) <= depth {
		s.rows = append(s.rows, make([]int, len(s.q)+1))
	}
	return s.rows[depth]
}

// descend processes node n whose parent prefix produced parentRow at byte
// depth depth (banded row for the prefix of length depth).
func (s *searcher) descend(n *node, parentRow []int, depth int) {
	if s.prune(n) {
		return
	}
	row := parentRow
	d := depth
	for _, c := range n.label {
		next, minV := edit.StepBandRow(s.q, row, c, d+1, s.k, s.rowAt(d+1))
		row = next
		d++
		if minV > s.k {
			// No extension of this prefix can come back within k
			// (row minima never decrease when extending the prefix).
			return
		}
	}
	if len(n.ids) > 0 {
		if dist, ok := edit.BandRowDistance(row, d, len(s.q), s.k); ok {
			for _, id := range n.ids {
				s.fn(id, dist)
			}
		}
	}
	for _, c := range n.children {
		s.descend(c, row, d)
	}
}

// descendPaper is the paper-faithful §4.1 traversal: full DP rows, pruned by
// the node length window and the diagonal test of eq. 9–10.
//
// Soundness of the diagonal test: suppose some string y below the node has
// ed(q, y) <= k, and split an optimal alignment at prefix depth i <= len(q).
// The prefix part uses c1 edits and drifts the alignment by |d_i| positions;
// the suffix part uses c2 edits and must cover the remaining drift, so
// |d_i| <= c2 + |len(y)-len(q)|. Then
//
//	ed(y[:i], q[:i]) <= c1 + |d_i| <= c1 + c2 + |len(y)-len(q)| <= k + d_m,
//
// where d_m = max(maxLen-len(q), len(q)-minLen) bounds the length difference
// for every y in the subtree. Pruning when row[i] > k + d_m therefore never
// loses a match. For depths i beyond len(q) the completion bound applies:
// ed(q, y) >= ed(q, y[:i]) - (len(y) - i) >= row[len(q)] - (maxLen - i).
func (s *searcher) descendPaper(n *node, parentRow []int, depth int) {
	if s.prune(n) {
		return
	}
	lq := len(s.q)
	dm := 0
	if v := int(n.maxLen) - lq; v > dm {
		dm = v
	}
	if v := lq - int(n.minLen); v > dm {
		dm = v
	}
	row := parentRow
	d := depth
	for _, c := range n.label {
		row = edit.StepRow(s.q, row, c, s.rowAt(d+1))
		d++
		if d <= lq {
			if row[d] > s.k+dm {
				return
			}
		} else if row[lq] > s.k+int(n.maxLen)-d {
			return
		}
	}
	if len(n.ids) > 0 {
		if dist := edit.RowDistance(row); dist <= s.k {
			for _, id := range n.ids {
				s.fn(id, dist)
			}
		}
	}
	for _, c := range n.children {
		s.descendPaper(c, row, d)
	}
}
