package trie

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"simsearch/internal/edit"
	"simsearch/internal/filter"
)

func sortedMatches(ms []Match) []Match {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	return ms
}

// scanRef is the brute-force reference: full scan with exact distances.
func scanRef(data []string, q string, k int) []Match {
	var out []Match
	for i, s := range data {
		if d := edit.Distance(q, s); d <= k {
			out = append(out, Match{ID: int32(i), Dist: d})
		}
	}
	return out
}

func equalMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	sortedMatches(a)
	sortedMatches(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperFigure4Compression(t *testing.T) {
	// Figure 4: "Berlin", "Bern", "Ulm" — the compressed tree has half the
	// nodes of the plain tree.
	data := []string{"Berlin", "Bern", "Ulm"}
	tr := Build(data)
	// Plain: root + B,e,r,l,i,n + n(after Ber->n) + U,l,m = 1+6+1+3 = 11.
	if got := tr.NodeCount(); got != 11 {
		t.Errorf("plain NodeCount = %d, want 11", got)
	}
	tr.Compress()
	// Compressed: root, "Ber", "lin", "n", "Ulm" = 5 nodes.
	if got := tr.NodeCount(); got != 5 {
		t.Errorf("compressed NodeCount = %d, want 5", got)
	}
	if !tr.Compressed() {
		t.Error("Compressed() = false after Compress")
	}
	// Same results before/after compression.
	for _, q := range []string{"Bern", "Berlin", "Ulm", "Barn", "Hamburg"} {
		for k := 0; k <= 3; k++ {
			got := tr.Search(q, k)
			want := scanRef(data, q, k)
			if !equalMatches(got, want) {
				t.Errorf("Search(%q, %d) = %v, want %v", q, k, got, want)
			}
		}
	}
}

func TestSearchExactAndFuzzy(t *testing.T) {
	data := []string{"berlin", "bern", "bonn", "munich", "ulm", "köln", "erlangen", ""}
	tr := Build(data)
	// Exact (k=0).
	ms := tr.Search("bonn", 0)
	if len(ms) != 1 || ms[0].ID != 2 || ms[0].Dist != 0 {
		t.Errorf("exact search = %v", ms)
	}
	// Empty query matches empty string at k=0.
	ms = tr.Search("", 0)
	if len(ms) != 1 || ms[0].ID != 7 {
		t.Errorf("empty query = %v", ms)
	}
	// Fuzzy.
	ms = tr.Search("berlyn", 1)
	if len(ms) != 1 || ms[0].ID != 0 || ms[0].Dist != 1 {
		t.Errorf("fuzzy search = %v", ms)
	}
	// Negative k returns nothing.
	if got := tr.Search("bonn", -1); got != nil {
		t.Errorf("k=-1 returned %v", got)
	}
}

func TestDuplicateStringsShareNode(t *testing.T) {
	data := []string{"ulm", "ulm", "ulm"}
	tr := Build(data)
	ms := tr.Search("ulm", 0)
	if len(ms) != 3 {
		t.Fatalf("got %d matches, want 3", len(ms))
	}
	ids := map[int32]bool{}
	for _, m := range ms {
		ids[m.ID] = true
	}
	if !ids[0] || !ids[1] || !ids[2] {
		t.Errorf("ids = %v", ms)
	}
}

func TestInsertAfterCompressPanics(t *testing.T) {
	tr := Build([]string{"a"})
	tr.Compress()
	defer func() {
		if recover() == nil {
			t.Error("Insert after Compress did not panic")
		}
	}()
	tr.Insert("b", 1)
}

func TestStats(t *testing.T) {
	tr := Build([]string{"abc", "abd", "x"})
	st := tr.Stats()
	if st.Strings != 3 || st.Nodes != tr.NodeCount() || st.MaxDepth != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.LabelBytes != 5 { // nodes a, b, c, d, x — one byte each
		t.Errorf("LabelBytes = %d, want 5", st.LabelBytes)
	}
	tr.Compress()
	st = tr.Stats()
	if !st.Compressed || st.MaxDepth != 3 {
		t.Errorf("compressed stats = %+v", st)
	}
}

func TestCompressIdempotent(t *testing.T) {
	tr := Build([]string{"berlin", "bern"})
	tr.Compress()
	n := tr.NodeCount()
	tr.Compress()
	if tr.NodeCount() != n {
		t.Error("second Compress changed node count")
	}
}

func randomString(r *rand.Rand, alphabet string, maxLen int) string {
	n := r.Intn(maxLen + 1)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return sb.String()
}

func TestQuickTrieAgreesWithScan(t *testing.T) {
	for _, compress := range []bool{false, true} {
		for _, withFreq := range []bool{false, true} {
			for _, modern := range []bool{false, true} {
				compress, withFreq, modern := compress, withFreq, modern
				fn := func(seed int64) bool {
					r := rand.New(rand.NewSource(seed))
					n := 1 + r.Intn(60)
					data := make([]string, n)
					for i := range data {
						data[i] = randomString(r, "ACGNT", 12)
					}
					var opts []Option
					if withFreq {
						opts = append(opts, WithFrequency(filter.DNAFrequency()))
					}
					if modern {
						opts = append(opts, WithModernPruning())
					}
					tr := Build(data, opts...)
					if compress {
						tr.Compress()
					}
					q := randomString(r, "ACGNT", 12)
					k := r.Intn(5)
					return equalMatches(tr.Search(q, k), scanRef(data, q, k))
				}
				if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
					t.Errorf("compress=%v freq=%v modern=%v: %v", compress, withFreq, modern, err)
				}
			}
		}
	}
}

func TestModernAndPaperModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	data := make([]string, 300)
	for i := range data {
		data[i] = randomString(r, "abcdAB", 14)
	}
	paper := Build(data)
	modern := Build(data, WithModernPruning())
	paper.Compress()
	modern.Compress()
	if !modern.Modern() || paper.Modern() {
		t.Fatal("Modern() flags wrong")
	}
	for i := 0; i < 80; i++ {
		q := randomString(r, "abcdAB", 14)
		k := r.Intn(5)
		if !equalMatches(paper.Search(q, k), modern.Search(q, k)) {
			t.Fatalf("modes diverge on %q k=%d", q, k)
		}
	}
}

func TestQuickCompressionNeverLosesStrings(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(80)
		data := make([]string, n)
		for i := range data {
			data[i] = randomString(r, "ab", 8)
		}
		tr := Build(data)
		before := tr.NodeCount()
		tr.Compress()
		if tr.NodeCount() > before {
			return false
		}
		// Every inserted string must still be findable exactly.
		for i, s := range data {
			found := false
			for _, m := range tr.Search(s, 0) {
				if m.ID == int32(i) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLongDNAStrings(t *testing.T) {
	// The DNA regime: strings of length ~100 with high overlap.
	r := rand.New(rand.NewSource(42))
	genome := randomString(r, "ACGT", 4000)
	for len(genome) < 300 {
		genome = randomString(r, "ACGT", 4000)
	}
	var data []string
	for i := 0; i+100 <= len(genome) && len(data) < 200; i += 7 {
		data = append(data, genome[i:i+100])
	}
	tr := Build(data)
	tr.Compress()
	for _, k := range []int{0, 4, 8, 16} {
		q := data[len(data)/2]
		got := tr.Search(q, k)
		want := scanRef(data, q, k)
		if !equalMatches(got, want) {
			t.Errorf("k=%d: got %d matches, want %d", k, len(got), len(want))
		}
	}
}
