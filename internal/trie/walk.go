package trie

// Traversal utilities beyond fuzzy search: lexicographic iteration and exact
// prefix lookup (autocomplete), the operations a prefix tree gives away for
// free and that a deduplication or suggestion pipeline built on the index
// needs anyway.

// Walk visits every stored string in lexicographic byte order, passing the
// reconstructed string and the IDs it was inserted with. Returning false
// stops the walk. Duplicate strings are visited once with all their IDs.
func (t *Tree) Walk(fn func(s string, ids []int32) bool) {
	buf := make([]byte, 0, 64)
	t.walk(t.root, buf, fn)
}

func (t *Tree) walk(n *node, prefix []byte, fn func(s string, ids []int32) bool) bool {
	if len(n.ids) > 0 {
		if !fn(string(prefix), n.ids) {
			return false
		}
	}
	for _, c := range n.children {
		if !t.walk(c, append(prefix, c.label...), fn) {
			return false
		}
	}
	return true
}

// Strings returns every stored string in lexicographic order, with
// duplicates repeated according to their multiplicity.
func (t *Tree) Strings() []string {
	out := make([]string, 0, t.strCount)
	t.Walk(func(s string, ids []int32) bool {
		for range ids {
			out = append(out, s)
		}
		return true
	})
	return out
}

// PrefixSearch returns the IDs of every stored string that begins with
// prefix, up to limit results (limit <= 0 means unlimited), in lexicographic
// order of the stored strings.
func (t *Tree) PrefixSearch(prefix string, limit int) []int32 {
	n := t.root
	rest := prefix
	for len(rest) > 0 {
		child := findChild(n, rest[0])
		if child == nil {
			return nil
		}
		label := child.label
		// The label and the remaining prefix must agree on their overlap.
		l := len(label)
		if len(rest) < l {
			l = len(rest)
		}
		for i := 0; i < l; i++ {
			if label[i] != rest[i] {
				return nil
			}
		}
		rest = rest[l:]
		n = child
	}
	var out []int32
	t.collectIDs(n, &out, limit)
	return out
}

func (t *Tree) collectIDs(n *node, out *[]int32, limit int) bool {
	for _, id := range n.ids {
		if limit > 0 && len(*out) >= limit {
			return false
		}
		*out = append(*out, id)
	}
	for _, c := range n.children {
		if limit > 0 && len(*out) >= limit {
			return false
		}
		if !t.collectIDs(c, out, limit) {
			return false
		}
	}
	return true
}
