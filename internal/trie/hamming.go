package trie

// Hamming-distance search over the same tree. The PETER index from the
// paper's §2.3 related work supports both edit and Hamming distance; the
// Hamming descent is dramatically cheaper than the DP descent because
// positions stay aligned: a node at byte depth d compares its label bytes
// against q[d:] and accumulates mismatches. Only strings of exactly len(q)
// bytes can match, so the node length window prunes hard.

// SearchHamming returns every stored string x with len(x) == len(q) and at
// most k mismatching positions, sorted by ID order of discovery (callers
// sort if needed).
func (t *Tree) SearchHamming(q string, k int) []Match {
	var out []Match
	t.SearchHammingFunc(q, k, func(id int32, dist int) {
		out = append(out, Match{ID: id, Dist: dist})
	})
	return out
}

// SearchHammingFunc streams the matches to fn.
func (t *Tree) SearchHammingFunc(q string, k int, fn func(id int32, dist int)) {
	if k < 0 {
		return
	}
	// The empty string matches only an empty query.
	if len(t.root.ids) > 0 && len(q) == 0 {
		for _, id := range t.root.ids {
			fn(id, 0)
		}
	}
	var descend func(n *node, depth, mism int)
	descend = func(n *node, depth, mism int) {
		// Only subtrees containing strings of exactly len(q) can match.
		if int(n.minLen) > len(q) || int(n.maxLen) < len(q) {
			return
		}
		for _, c := range n.label {
			if depth >= len(q) {
				return // longer than the query: no Hamming match below
			}
			if c != q[depth] {
				mism++
				if mism > k {
					return
				}
			}
			depth++
		}
		if len(n.ids) > 0 && depth == len(q) {
			for _, id := range n.ids {
				fn(id, mism)
			}
		}
		for _, c := range n.children {
			descend(c, depth, mism)
		}
	}
	for _, c := range t.root.children {
		descend(c, 0, 0)
	}
}
