package trie

// Delete removes one occurrence of s inserted with the given ID. It reports
// whether the (s, id) pair was present. On an uncompressed tree, branches
// left without any terminal descendants are pruned; on a compressed tree
// only the ID is removed and the structure is left intact (path-compressed
// nodes would otherwise need re-merging, and search correctness does not
// depend on pruning). The minLen/maxLen and frequency pruning bounds are
// left conservative (they may over-approximate after deletions, which keeps
// search sound but may prune slightly less).
func (t *Tree) Delete(s string, id int32) bool {
	// Walk down recording the path.
	type step struct {
		parent *node
		child  *node
	}
	var path []step
	n := t.root
	rest := s
	for len(rest) > 0 {
		child := findChild(n, rest[0])
		if child == nil {
			return false
		}
		label := child.label
		if len(rest) < len(label) {
			return false
		}
		for i := range label {
			if label[i] != rest[i] {
				return false
			}
		}
		path = append(path, step{parent: n, child: child})
		rest = rest[len(label):]
		n = child
	}
	// Remove the id.
	found := false
	for i, v := range n.ids {
		if v == id {
			n.ids = append(n.ids[:i], n.ids[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	t.strCount--
	if t.compressed {
		return true
	}
	// Prune now-empty leaf chains bottom-up.
	for i := len(path) - 1; i >= 0; i-- {
		st := path[i]
		if len(st.child.ids) > 0 || len(st.child.children) > 0 {
			break
		}
		removeChild(st.parent, st.child.label[0])
		t.nodeCount--
	}
	return true
}

func removeChild(n *node, c byte) {
	for i, child := range n.children {
		if child.label[0] == c {
			n.children = append(n.children[:i], n.children[i+1:]...)
			return
		}
	}
}

// Contains reports whether s was inserted with the given ID and not deleted.
func (t *Tree) Contains(s string, id int32) bool {
	n := t.root
	rest := s
	for len(rest) > 0 {
		child := findChild(n, rest[0])
		if child == nil {
			return false
		}
		label := child.label
		if len(rest) < len(label) {
			return false
		}
		for i := range label {
			if label[i] != rest[i] {
				return false
			}
		}
		rest = rest[len(label):]
		n = child
	}
	for _, v := range n.ids {
		if v == id {
			return true
		}
	}
	return false
}
