package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"simsearch/internal/edit"
)

// refNearestK enumerates everything and keeps the k best under (dist, id).
func refNearestK(data []string, q string, k, maxDist int) []Match {
	all := []Match{} // NearestK returns a non-nil empty slice; match that.
	for i, s := range data {
		if d := edit.Distance(q, s); d <= maxDist {
			all = append(all, Match{ID: int32(i), Dist: d})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestNearestKBasic(t *testing.T) {
	data := []string{"berlin", "bern", "bonn", "ulm", "berlik", ""}
	for _, compress := range []bool{false, true} {
		for _, modern := range []bool{false, true} {
			var opts []Option
			if modern {
				opts = append(opts, WithModernPruning())
			}
			tr := Build(data, opts...)
			if compress {
				tr.Compress()
			}
			got := tr.NearestK("berlin", 3, 3)
			want := refNearestK(data, "berlin", 3, 3)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("compress=%v modern=%v: got %v, want %v", compress, modern, got, want)
			}
		}
	}
}

func TestNearestKEdgeCases(t *testing.T) {
	tr := Build([]string{"a", "b"})
	if got := tr.NearestK("a", 0, 3); got != nil {
		t.Errorf("k=0: %v", got)
	}
	if got := tr.NearestK("a", 2, -1); got != nil {
		t.Errorf("maxDist<0: %v", got)
	}
	// Fewer matches than k.
	got := tr.NearestK("a", 10, 0)
	if len(got) != 1 || got[0].ID != 0 {
		t.Errorf("got %v", got)
	}
	// Empty tree.
	if got := New().NearestK("a", 3, 2); len(got) != 0 {
		t.Errorf("empty tree: %v", got)
	}
}

func TestNearestKEmptyStringInTree(t *testing.T) {
	tr := Build([]string{"", "a", "ab"})
	got := tr.NearestK("a", 2, 2)
	want := refNearestK([]string{"", "a", "ab"}, "a", 2, 2)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestQuickNearestKMatchesReference(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		data := make([]string, n)
		for i := range data {
			data[i] = randomString(r, "abAB", 9)
		}
		tr := Build(data)
		if r.Intn(2) == 0 {
			tr.Compress()
		}
		q := randomString(r, "abAB", 9)
		k := 1 + r.Intn(6)
		maxDist := r.Intn(6)
		got := tr.NearestK(q, k, maxDist)
		want := refNearestK(data, q, k, maxDist)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNearestKDuplicates(t *testing.T) {
	data := []string{"ulm", "ulm", "ulm", "ulx"}
	tr := Build(data)
	got := tr.NearestK("ulm", 2, 1)
	want := []Match{{ID: 0, Dist: 0}, {ID: 1, Dist: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}
