package trie

// Binary serialization of a built tree, so an index over a large corpus can
// be constructed once and memory-mapped... no: loaded quickly on later runs
// instead of rebuilt. The format is a preorder walk with varint-framed
// fields — stdlib only, versioned, and validated on load.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"simsearch/internal/filter"
)

// magic identifies the format; the trailing digit is the version.
var magic = []byte("SIMTRIE1")

// ErrBadFormat reports a stream that is not a serialized tree of the
// supported version.
var ErrBadFormat = errors.New("trie: bad serialization format")

// WriteTo serializes the tree. It returns the number of bytes written.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := bw.Write(magic); err != nil {
		return bw.n, err
	}
	var flags byte
	if t.compressed {
		flags |= 1
	}
	if t.modern {
		flags |= 2
	}
	if t.freq != nil {
		flags |= 4
	}
	if err := bw.WriteByte(flags); err != nil {
		return bw.n, err
	}
	if t.freq != nil {
		writeBytes(bw, []byte(t.freq.Name()))
		writeBytes(bw, []byte(t.freq.Symbols()))
	}
	writeUvarint(bw, uint64(t.strCount))
	writeUvarint(bw, uint64(t.nodeCount))
	if err := writeNode(bw, t.root); err != nil {
		return bw.n, err
	}
	if err := bw.w.(*bufio.Writer).Flush(); err != nil {
		return bw.n, err
	}
	return bw.n, bw.err
}

func writeNode(w *countingWriter, n *node) error {
	writeBytes(w, n.label)
	writeUvarint(w, uint64(len(n.ids)))
	for _, id := range n.ids {
		writeUvarint(w, uint64(id))
	}
	writeUvarint(w, uint64(n.minLen))
	writeUvarint(w, uint64(n.maxLen))
	writeUvarint(w, uint64(len(n.freqLo)))
	for i := range n.freqLo {
		writeUvarint(w, uint64(uint16(n.freqLo[i])))
		writeUvarint(w, uint64(uint16(n.freqHi[i])))
	}
	writeUvarint(w, uint64(len(n.children)))
	for _, c := range n.children {
		if err := writeNode(w, c); err != nil {
			return err
		}
	}
	return w.err
}

// Read deserializes a tree written by WriteTo.
func Read(r io.Reader) (*Tree, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	for i := range magic {
		if head[i] != magic[i] {
			return nil, fmt.Errorf("%w: magic mismatch", ErrBadFormat)
		}
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	t := &Tree{
		compressed: flags&1 != 0,
		modern:     flags&2 != 0,
	}
	if flags&4 != 0 {
		name, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		symbols, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		t.freq = filter.NewFrequency(string(name), string(symbols))
	}
	strCount, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	nodeCount, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	t.strCount = int(strCount)
	t.nodeCount = int(nodeCount)
	t.root, err = readNode(br, 0)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// maxDepth bounds recursion so corrupted input cannot blow the stack.
const maxDepth = 1 << 16

func readNode(r *bufio.Reader, depth int) (*node, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("%w: node depth exceeds %d", ErrBadFormat, maxDepth)
	}
	n := &node{}
	label, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	if len(label) > 0 {
		n.label = label
	}
	idCount, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if idCount > 1<<31 {
		return nil, fmt.Errorf("%w: absurd id count", ErrBadFormat)
	}
	for i := uint64(0); i < idCount; i++ {
		v, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		n.ids = append(n.ids, int32(v))
	}
	minLen, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	maxLen, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	n.minLen, n.maxLen = int32(minLen), int32(maxLen)
	freqLen, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if freqLen > 256 {
		return nil, fmt.Errorf("%w: absurd frequency vector", ErrBadFormat)
	}
	if freqLen > 0 {
		n.freqLo = make([]int16, freqLen)
		n.freqHi = make([]int16, freqLen)
		for i := uint64(0); i < freqLen; i++ {
			lo, err := readUvarint(r)
			if err != nil {
				return nil, err
			}
			hi, err := readUvarint(r)
			if err != nil {
				return nil, err
			}
			n.freqLo[i] = int16(uint16(lo))
			n.freqHi[i] = int16(uint16(hi))
		}
	}
	childCount, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if childCount > 256 {
		return nil, fmt.Errorf("%w: more than 256 children", ErrBadFormat)
	}
	for i := uint64(0); i < childCount; i++ {
		c, err := readNode(r, depth+1)
		if err != nil {
			return nil, err
		}
		if len(c.label) == 0 {
			return nil, fmt.Errorf("%w: child with empty label", ErrBadFormat)
		}
		n.children = append(n.children, c)
	}
	// Children must arrive sorted by first label byte (search relies on it).
	for i := 1; i < len(n.children); i++ {
		if n.children[i-1].label[0] >= n.children[i].label[0] {
			return nil, fmt.Errorf("%w: children out of order", ErrBadFormat)
		}
	}
	return n, nil
}

// --- low-level helpers --------------------------------------------------------

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func (c *countingWriter) WriteByte(b byte) error {
	_, err := c.Write([]byte{b})
	return err
}

func writeUvarint(w *countingWriter, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeBytes(w *countingWriter, b []byte) {
	writeUvarint(w, uint64(len(b)))
	w.Write(b)
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return v, nil
}

func readBytes(r *bufio.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: absurd byte-field length %d", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return buf, nil
}
