package trie

import (
	"container/heap"

	"simsearch/internal/edit"
)

// Best-first nearest-neighbour search. Instead of re-running threshold
// searches with growing k (iterative deepening, core.TopK), NearestK
// explores the tree in order of each subtree's distance lower bound (the
// banded row minimum): a priority queue pops the most promising branch
// first, and the search stops as soon as the k-th best confirmed distance is
// no worse than every remaining bound. Each queue entry owns a copy of its
// DP row, so expansion order is free.

// frontierItem is one queued subtree.
type frontierItem struct {
	n     *node
	row   []int
	depth int
	bound int
}

type frontier []frontierItem

func (f frontier) Len() int            { return len(f) }
func (f frontier) Less(i, j int) bool  { return f[i].bound < f[j].bound }
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(frontierItem)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	it := old[n-1]
	*f = old[:n-1]
	return it
}

// resultHeap keeps the k best under (dist, id) order, with the worst on
// top so it is evicted first.
type resultHeap []Match

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist
	}
	return h[i].ID > h[j].ID
}
func (h resultHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) {
	*h = append(*h, x.(Match))
}
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// NearestK returns up to k of the closest stored strings to q, considering
// only candidates within maxDist edits, ordered by (distance, ID). It works
// on both pruning modes and on compressed and plain trees.
func (t *Tree) NearestK(q string, k, maxDist int) []Match {
	if k <= 0 || maxDist < 0 {
		return nil
	}
	var results resultHeap
	// worst returns the current k-th best distance, or maxDist+1 while the
	// result set is not full.
	worst := func() int {
		if len(results) < k {
			return maxDist + 1
		}
		return results[0].Dist
	}
	offer := func(id int32, dist int) {
		if dist > maxDist {
			return
		}
		if len(results) < k {
			heap.Push(&results, Match{ID: id, Dist: dist})
			return
		}
		top := results[0]
		if dist < top.Dist || (dist == top.Dist && id < top.ID) {
			results[0] = Match{ID: id, Dist: dist}
			heap.Fix(&results, 0)
		}
	}

	band := maxDist
	root := edit.InitialBandRow(q, band, nil)
	if len(t.root.ids) > 0 && len(q) <= maxDist {
		for _, id := range t.root.ids {
			offer(id, len(q))
		}
	}
	var fr frontier
	for _, c := range t.root.children {
		// The initial row's minimum is 0 (the empty-prefix cell).
		fr = append(fr, frontierItem{n: c, row: root, depth: 0, bound: 0})
	}
	heap.Init(&fr)

	// Label walks ping-pong between two reusable step buffers; a row is
	// materialized (copied) only when it outlives its node by being queued
	// with the node's children. Queued rows are shared read-only between
	// siblings, so they must never alias the step buffers.
	stepCur := make([]int, len(q)+1)
	stepAlt := make([]int, len(q)+1)

	for fr.Len() > 0 {
		it := heap.Pop(&fr).(frontierItem)
		if it.bound > worst() || it.bound > maxDist {
			break // every remaining subtree is at least this far
		}
		n := it.n
		// Length-window prune against the *current* worst bound (equal
		// distances still matter for ID tie-breaking, so prune only above).
		w := worst()
		if w > maxDist {
			w = maxDist
		}
		if int(n.minLen) > len(q)+w || int(n.maxLen) < len(q)-w {
			continue
		}
		row := it.row
		depth := it.depth
		alive := true
		minV := it.bound
		for _, c := range n.label {
			next, mv := edit.StepBandRow(q, row, c, depth+1, band, stepCur)
			row = next
			stepCur, stepAlt = stepAlt, stepCur
			depth++
			minV = mv
			if minV > maxDist || minV > worst() {
				alive = false
				break
			}
		}
		if !alive {
			continue
		}
		if len(n.ids) > 0 {
			if dist, ok := edit.BandRowDistance(row, depth, len(q), band); ok {
				for _, id := range n.ids {
					offer(id, dist)
				}
			}
		}
		if len(n.children) > 0 {
			if len(n.label) > 0 {
				// row points into a step buffer; queued entries own their rows.
				row = append([]int(nil), row...)
			}
			for _, c := range n.children {
				heap.Push(&fr, frontierItem{n: c, row: row, depth: depth, bound: minV})
			}
		}
	}

	out := make([]Match, len(results))
	copy(out, results)
	// Order by (dist, id).
	for i := 1; i < len(out); i++ {
		m := out[i]
		j := i - 1
		for j >= 0 && (out[j].Dist > m.Dist || (out[j].Dist == m.Dist && out[j].ID > m.ID)) {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = m
	}
	return out
}
