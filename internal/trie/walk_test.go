package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestWalkLexicographic(t *testing.T) {
	data := []string{"bern", "berlin", "ulm", "aachen", "ulm"}
	for _, compress := range []bool{false, true} {
		tr := Build(data)
		if compress {
			tr.Compress()
		}
		got := tr.Strings()
		want := append([]string(nil), data...)
		sort.Strings(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("compress=%v: Strings() = %v, want %v", compress, got, want)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := Build([]string{"a", "b", "c"})
	visits := 0
	tr.Walk(func(s string, ids []int32) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Errorf("visits = %d, want 2", visits)
	}
}

func TestWalkEmptyStringAtRoot(t *testing.T) {
	tr := Build([]string{"", "a"})
	var seen []string
	tr.Walk(func(s string, ids []int32) bool {
		seen = append(seen, s)
		return true
	})
	if !reflect.DeepEqual(seen, []string{"", "a"}) {
		t.Errorf("seen = %q", seen)
	}
}

func TestPrefixSearch(t *testing.T) {
	data := []string{"berlin", "bern", "bonn", "ber", "ulm"}
	for _, compress := range []bool{false, true} {
		tr := Build(data)
		if compress {
			tr.Compress()
		}
		ids := tr.PrefixSearch("ber", 0)
		// Expect bers: "ber"(3), "berlin"(0), "bern"(1) in lexicographic
		// order of the stored strings: ber, berlin, bern.
		want := []int32{3, 0, 1}
		if !reflect.DeepEqual(ids, want) {
			t.Errorf("compress=%v: PrefixSearch(ber) = %v, want %v", compress, ids, want)
		}
		if got := tr.PrefixSearch("zz", 0); got != nil {
			t.Errorf("PrefixSearch(zz) = %v", got)
		}
		if got := tr.PrefixSearch("", 2); len(got) != 2 {
			t.Errorf("limit broken: %v", got)
		}
		// Prefix longer than any stored string.
		if got := tr.PrefixSearch("berlins", 0); got != nil {
			t.Errorf("PrefixSearch(berlins) = %v", got)
		}
		// Prefix ending inside a compressed label ("berl" is inside "berlin"
		// after compression).
		if got := tr.PrefixSearch("berl", 0); !reflect.DeepEqual(got, []int32{0}) {
			t.Errorf("PrefixSearch(berl) = %v", got)
		}
	}
}

func TestQuickPrefixSearchMatchesLinear(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		data := make([]string, n)
		for i := range data {
			data[i] = randomString(r, "ab", 8)
		}
		tr := Build(data)
		if r.Intn(2) == 0 {
			tr.Compress()
		}
		prefix := randomString(r, "ab", 5)
		got := tr.PrefixSearch(prefix, 0)
		var want []int32
		for i, s := range data {
			if strings.HasPrefix(s, prefix) {
				want = append(want, int32(i))
			}
		}
		sortIDs := func(ids []int32) {
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		}
		sortIDs(got)
		sortIDs(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickWalkRoundTrip(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		data := make([]string, n)
		for i := range data {
			data[i] = randomString(r, "abC", 6)
		}
		tr := Build(data)
		tr.Compress()
		got := tr.Strings()
		want := append([]string(nil), data...)
		sort.Strings(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
